// Differential tests for the distributed shard fabric: a ClusterEngine
// fanning over real PisServers on loopback sockets must be externally
// indistinguishable — answers, candidate lists, every shared QueryStats
// counter — from a single-process EngineHost applying the same write
// schedule. Covers shards {1,3,8} x replicas {1,2}, a randomized
// add/remove/compact/query lifecycle per configuration, sketch-prefilter
// parity, write-path placement parity, and a replica kill-and-restart
// mid-stream with catch-up verified by failing reads over to the
// recovered replica.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "engine_test_util.h"
#include "server/cluster_engine.h"
#include "util/json.h"

namespace pis {
namespace {

using pis::testing::ClusterHarness;

/// One randomized lifecycle pass: interleaved adds, removes, compactions,
/// and differential query/batch checks. Bails on the first fatal failure
/// so a broken cluster doesn't cascade.
void RunLifecycle(ClusterHarness& h, int steps) {
  h.CheckQueries();
  for (int step = 0; step < steps; ++step) {
    if (::testing::Test::HasFatalFailure()) return;
    switch (h.rng().UniformInt(0, 3)) {
      case 0:
        if (h.CanAdd()) h.AddOne();
        break;
      case 1:
        if (h.live_count() > 4) h.RemoveOne();
        break;
      case 2:
        h.CompactAll();
        break;
      default:
        h.CheckQueries();
        break;
    }
  }
  if (::testing::Test::HasFatalFailure()) return;
  h.CheckQueries();
  h.CheckBatch();
}

TEST(ClusterRouterTest, SingleShardSingleReplica) {
  ClusterHarness::Options opt;
  opt.num_shards = 1;
  opt.replicas = 1;
  opt.num_groups = 1;
  opt.seed = 1;
  ClusterHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;
  RunLifecycle(h, 8);
}

TEST(ClusterRouterTest, ThreeShardsSingleReplica) {
  ClusterHarness::Options opt;
  opt.num_shards = 3;
  opt.replicas = 1;
  opt.num_groups = 2;  // one endpoint serves two shards: grouped fan-out
  opt.seed = 2;
  ClusterHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;
  RunLifecycle(h, 10);
}

TEST(ClusterRouterTest, ThreeShardsTwoReplicas) {
  ClusterHarness::Options opt;
  opt.num_shards = 3;
  opt.replicas = 2;
  opt.num_groups = 2;
  opt.seed = 3;
  ClusterHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;
  RunLifecycle(h, 10);
}

TEST(ClusterRouterTest, EightShardsSingleReplica) {
  ClusterHarness::Options opt;
  opt.num_shards = 8;
  opt.replicas = 1;
  opt.num_groups = 3;  // uneven striping: groups own 3/3/2 shards
  opt.seed = 4;
  ClusterHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;
  RunLifecycle(h, 8);
}

TEST(ClusterRouterTest, EightShardsTwoReplicas) {
  ClusterHarness::Options opt;
  opt.num_shards = 8;
  opt.replicas = 2;
  opt.num_groups = 2;
  opt.seed = 5;
  ClusterHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;
  RunLifecycle(h, 8);
}

TEST(ClusterRouterTest, SketchPrefilterParity) {
  ClusterHarness::Options opt;
  opt.num_shards = 3;
  opt.replicas = 1;
  opt.num_groups = 2;
  opt.seed = 6;
  opt.sketch = true;
  ClusterHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;
  RunLifecycle(h, 8);
}

/// Placement parity is what makes a router-driven cluster reconstructible:
/// the router's least-loaded/lowest-id rule must assign exactly the gids
/// the oracle's ShardedFragmentIndex::AddGraph assigns, including after
/// removals skew the per-shard live counts.
TEST(ClusterRouterTest, WritePlacementMatchesOracleUnderSkew) {
  ClusterHarness::Options opt;
  opt.num_shards = 3;
  opt.replicas = 1;
  opt.num_groups = 3;
  opt.seed = 7;
  ClusterHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;
  for (int i = 0; i < 3 && h.live_count() > 4; ++i) {
    h.RemoveOne();
    if (::testing::Test::HasFatalFailure()) return;
  }
  while (h.CanAdd()) {
    h.AddOne();  // asserts cluster gid == oracle gid on every add
    if (::testing::Test::HasFatalFailure()) return;
  }
  h.CheckQueries();
}

/// The cluster-grade schedule the fabric exists for: kill one replica of
/// a 2-replica group mid-stream, keep querying and writing through the
/// outage (reads fail over; writes ack on the surviving replica and queue
/// for the dead one), restart it, then kill the OTHER replica — forcing
/// every read of that group onto the recovered one, which proves the
/// catch-up queue actually replayed the missed writes.
TEST(ClusterRouterTest, ReplicaKillAndRestartMidStream) {
  ClusterHarness::Options opt;
  opt.num_shards = 3;
  opt.replicas = 2;
  opt.num_groups = 3;  // 6 servers; group g serves exactly shard g
  opt.seed = 8;
  ClusterHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;

  h.CheckQueries();
  if (::testing::Test::HasFatalFailure()) return;

  const int victim = h.ServerIndex(/*group=*/0, /*replica=*/0);
  const int sibling = h.ServerIndex(/*group=*/0, /*replica=*/1);
  h.KillServer(victim);
  if (::testing::Test::HasFatalFailure()) return;

  // Reads fail over to the sibling; writes commit with one ack and queue
  // catch-up for the victim.
  h.CheckQueries();
  for (int i = 0; i < 3; ++i) {
    if (::testing::Test::HasFatalFailure()) return;
    h.AddOne();
  }
  h.RemoveOne();
  if (::testing::Test::HasFatalFailure()) return;
  h.CheckQueries();
  if (::testing::Test::HasFatalFailure()) return;

  // Availability must survive the outage without the victim.
  ClusterEngine::ClusterStats mid = h.cluster().Stats();
  size_t queued = 0;
  for (const auto& ep : mid.endpoints) queued += ep.pending_ops;
  EXPECT_GT(queued, 0u) << "the dead replica should have queued catch-up ops";

  h.RestartServer(victim);  // rebind + one probe pass drains catch-up
  if (::testing::Test::HasFatalFailure()) return;
  ClusterEngine::ClusterStats after = h.cluster().Stats();
  for (const auto& ep : after.endpoints) {
    EXPECT_EQ(ep.pending_ops, 0u) << ep.name << " still has queued ops";
    EXPECT_FALSE(ep.breaker_open) << ep.name << " breaker still open";
  }

  // Now force reads onto the recovered replica: with the sibling dead,
  // shard 0 is served only by the victim we just restarted, so identical
  // answers prove the replayed writes really applied.
  h.KillServer(sibling);
  if (::testing::Test::HasFatalFailure()) return;
  h.CheckQueries();
  h.AddOne();
  if (::testing::Test::HasFatalFailure()) return;
  h.CheckQueries();
  if (::testing::Test::HasFatalFailure()) return;

  h.RestartServer(sibling);
  if (::testing::Test::HasFatalFailure()) return;
  h.CheckQueries();
  h.CheckBatch();
}

/// Fault injection while requests are in flight: a replica dies in the
/// middle of a SearchBatch. Per-query failover must make the kill
/// invisible — every batch result still ok and identical to the oracle
/// (the surviving replica holds the same state, so retried reads cannot
/// diverge).
TEST(ClusterRouterTest, ReplicaKillMidBatchFailsOverWithIdenticalResults) {
  ClusterHarness::Options opt;
  opt.num_shards = 3;
  opt.replicas = 2;
  opt.num_groups = 3;
  opt.seed = 10;
  opt.queries_per_check = 5;  // enough in-flight work to straddle the kill
  ClusterHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;

  h.CheckQueries();
  if (::testing::Test::HasFatalFailure()) return;

  const int victim = h.ServerIndex(/*group=*/1, /*replica=*/0);
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    h.KillServer(victim);
  });
  h.CheckBatch();  // races the kill by design; results must not change
  killer.join();
  if (::testing::Test::HasFatalFailure()) return;
  h.CheckQueries();
  if (::testing::Test::HasFatalFailure()) return;

  h.RestartServer(victim);
  if (::testing::Test::HasFatalFailure()) return;
  h.CheckQueries();
}

/// A cluster with every replica of one shard down must degrade loudly:
/// reads report Unavailable — never wrong answers computed from the
/// surviving shards alone — and recover differentially once the replica
/// returns.
TEST(ClusterRouterTest, TotalShardOutageIsUnavailableNotWrong) {
  ClusterHarness::Options opt;
  opt.num_shards = 2;
  opt.replicas = 1;
  opt.num_groups = 2;
  opt.seed = 9;
  ClusterHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;

  h.CheckQueries();
  if (::testing::Test::HasFatalFailure()) return;

  const int victim = h.ServerIndex(/*group=*/1, /*replica=*/0);
  h.KillServer(victim);
  if (::testing::Test::HasFatalFailure()) return;

  auto snapshot = h.oracle().snapshot();
  auto query = pis::testing::SampleQueries(*snapshot->db, 1, 6, /*seed=*/77);
  ASSERT_EQ(query.size(), 1u);
  auto result = h.cluster().Search(query[0]);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
      << result.status().ToString();

  h.RestartServer(victim);
  if (::testing::Test::HasFatalFailure()) return;
  h.CheckQueries();
}

TEST(ClusterManifestTest, ParsesAndValidates) {
  auto good = JsonValue::Parse(
      R"({"shards":[{"replicas":["127.0.0.1:4871","127.0.0.1:4872"]},)"
      R"({"replicas":["127.0.0.1:4873"]}]})");
  ASSERT_TRUE(good.ok());
  auto manifest = ClusterManifest::FromJson(good.value());
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest.value().shards.size(), 2u);
  EXPECT_EQ(manifest.value().shards[0].replicas.size(), 2u);
  EXPECT_EQ(manifest.value().shards[1].replicas[0], "127.0.0.1:4873");

  for (const char* bad : {
           R"({})",                                      // missing shards
           R"({"shards":[]})",                           // no shards
           R"({"shards":[{"replicas":[]}]})",            // empty replica set
           R"({"shards":[{"replicas":["nohost"]}]})",    // no port separator
           R"({"shards":[{"replicas":["h:0"]}]})",       // port out of range
           R"({"shards":[{"replicas":["h:70000"]}]})",   // port out of range
           R"({"shards":[{"replicas":[42]}]})",          // non-string replica
       }) {
    auto parsed = JsonValue::Parse(bad);
    ASSERT_TRUE(parsed.ok()) << bad;
    EXPECT_FALSE(ClusterManifest::FromJson(parsed.value()).ok())
        << "accepted invalid manifest: " << bad;
  }
}

}  // namespace
}  // namespace pis
