// Coverage for the remaining utilities: logging levels, timers, and the
// statistical behaviour of the seeded PRNG helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace pis {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(LoggingTest, MacrosCompileAndStream) {
  // Below the default threshold: must not crash; content unchecked.
  SetLogLevel(LogLevel::kError);
  PIS_LOG(Debug) << "debug " << 42;
  PIS_LOG(Info) << "info " << 3.5;
  PIS_LOG(Warning) << "warning";
  SetLogLevel(LogLevel::kInfo);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  PIS_CHECK(1 + 1 == 2) << "never printed";
  PIS_DCHECK(true) << "never printed";
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ PIS_CHECK(false) << "boom"; }, "Check failed");
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double s = t.Seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(t.Millis(), t.Seconds() * 1e3, t.Seconds() * 100);
  t.Reset();
  EXPECT_LT(t.Seconds(), 0.015);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(2);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 5000; ++i) hits[rng.UniformIndex(10)]++;
  for (int h : hits) EXPECT_GT(h, 300);  // roughly uniform
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(4);
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 9000; ++i) {
    hits[rng.Categorical({1.0, 2.0, 6.0})]++;
  }
  // Expected fractions 1/9, 2/9, 6/9 with generous tolerance.
  EXPECT_NEAR(hits[0] / 9000.0, 1.0 / 9, 0.03);
  EXPECT_NEAR(hits[1] / 9000.0, 2.0 / 9, 0.03);
  EXPECT_NEAR(hits[2] / 9000.0, 6.0 / 9, 0.03);
}

TEST(RngTest, HeavyTailIntBounds) {
  Rng rng(5);
  double sum = 0;
  int over_mean = 0;
  const int lo = 8;
  const double mean = 25;
  const int cap = 214;
  for (int i = 0; i < 4000; ++i) {
    int v = rng.HeavyTailInt(lo, mean, cap);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, cap);
    sum += v;
    if (v > mean) ++over_mean;
  }
  EXPECT_NEAR(sum / 4000.0, mean, 2.5);  // exponential: mean ≈ target
  EXPECT_GT(over_mean, 800);             // genuine tail mass
}

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(77);
  Rng b(77);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(6);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace pis
