// The compaction/rebalancing differential suite: seeded random
// interleavings of add / remove / compact-shard / compact-all / rebalance /
// save-load / search over shard counts {1, 3, 8}, asserting after EVERY
// step that both incrementally maintained engines (sharded and flat) answer
// exactly like an index rebuilt from scratch over only the live graphs.
// This is the checkable form of the compaction subsystem's contract:
// reclaiming dead postings never changes query semantics — not mid-
// sequence, not after rebalancing, and not across a persistence round trip.
//
// The long-horizon variant of the same schedule lives in
// compaction_lifecycle_slow_test.cc (label: slow).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "engine_test_util.h"
#include "index/fragment_index.h"
#include "index/sharded_index.h"

namespace pis {
namespace {

using ::pis::testing::LifecycleHarness;

// One randomized lifecycle step; `step` seeds the save/load tag.
void RandomStep(LifecycleHarness& h, int step) {
  // Remove-heavy mix so tombstones actually accumulate between compactions.
  const int roll = h.rng().UniformInt(0, 9);
  if ((roll < 4 && h.CanAdd()) || h.live_count() <= 2) {
    if (h.CanAdd()) {
      h.AddOne();
      return;
    }
  }
  if (roll < 6 && h.live_count() > 0) {
    h.RemoveOne();
  } else if (roll == 6) {
    h.CompactShard(h.rng().UniformInt(0, h.sharded().num_shards() - 1));
    h.CompactFlat();
  } else if (roll == 7) {
    h.CompactAll();
  } else if (roll == 8) {
    h.Rebalance();
  } else {
    h.SaveLoadRoundTrip("step" + std::to_string(step));
  }
}

// (num_shards, seed).
class CompactionLifecycleTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CompactionLifecycleTest, EveryStepMatchesFromScratchRebuild) {
  LifecycleHarness::Options opt;
  opt.num_shards = std::get<0>(GetParam());
  opt.seed = 100 + std::get<1>(GetParam());
  LifecycleHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;

  h.CheckAgainstRebuild();
  constexpr int kSteps = 12;
  for (int step = 0; step < kSteps; ++step) {
    RandomStep(h, step);
    if (::testing::Test::HasFatalFailure()) return;
    h.CheckAgainstRebuild();
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Land in a fully compacted, persisted state and re-verify once more.
  h.CompactAll();
  h.SaveLoadRoundTrip("final");
  if (::testing::Test::HasFatalFailure()) return;
  h.CheckAgainstRebuild();
}

INSTANTIATE_TEST_SUITE_P(ShardsBySeeds, CompactionLifecycleTest,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(0, 1)));

// Directed (non-random) properties of the new subsystem that the
// differential schedule only hits probabilistically.

TEST(CompactionTest, CompactShardEvictsDeadSlotsAndKeepsGlobalIds) {
  LifecycleHarness::Options opt;
  opt.num_shards = 3;
  opt.seed = 7;
  LifecycleHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;

  for (int i = 0; i < 4; ++i) h.RemoveOne();
  if (::testing::Test::HasFatalFailure()) return;
  const int live_before = h.sharded().num_live();
  const size_t removed = h.sharded().tombstones().size();
  ASSERT_EQ(removed, 4u);

  ASSERT_TRUE(h.sharded().Compact().ok());
  h.CompactFlat();
  if (::testing::Test::HasFatalFailure()) return;

  // Live count and the global tombstone record survive compaction; the
  // per-shard sets drain and the dead slots lose residency.
  EXPECT_EQ(h.sharded().num_live(), live_before);
  EXPECT_EQ(h.sharded().tombstones().size(), removed);
  int resident = 0;
  for (int s = 0; s < h.sharded().num_shards(); ++s) {
    EXPECT_TRUE(h.sharded().shard(s).tombstones().empty());
    EXPECT_EQ(h.sharded().shard(s).num_live(), h.sharded().shard_size(s));
    resident += h.sharded().shard_size(s);
  }
  EXPECT_EQ(resident, h.sharded().num_live());
  for (int gid = 0; gid < h.sharded().db_size(); ++gid) {
    if (h.sharded().IsLive(gid)) {
      EXPECT_GE(h.sharded().shard_of(gid), 0);
    } else {
      // Removed AND compacted: the id lost residency everywhere but stays
      // dead forever (ids are never reused).
      EXPECT_EQ(h.sharded().shard_of(gid), -1);
    }
  }
  h.CheckAgainstRebuild();
}

TEST(CompactionTest, AutoCompactionPolicyTriggersOnThreshold) {
  LifecycleHarness::Options opt;
  opt.num_shards = 2;
  opt.seed = 3;
  LifecycleHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;

  // Threshold 0.5: shards self-compact as soon as half their resident
  // slots are dead, so no shard can ever report a higher ratio afterwards.
  h.sharded().set_compact_dead_ratio(0.5);
  const int epoch_before = h.sharded().compaction_epoch();
  while (h.live_count() > 2) {
    h.RemoveOne();
    if (::testing::Test::HasFatalFailure()) return;
    for (int s = 0; s < h.sharded().num_shards(); ++s) {
      EXPECT_LT(h.sharded().shard_dead_ratio(s), 0.5);
    }
    h.CompactFlat();  // keep the flat twin aligned for the oracle
    h.CheckAgainstRebuild();
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(h.sharded().compaction_epoch(), epoch_before);
}

TEST(CompactionTest, RebalanceAfterSkewedRemovalsLevelsShards) {
  LifecycleHarness::Options opt;
  opt.num_shards = 3;
  opt.seed = 11;
  opt.initial_graphs = 15;
  opt.pool_graphs = 20;
  LifecycleHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;

  // Gut shard 0: remove every live graph it holds (ids 0..4 under the
  // contiguous initial split), skewing the live counts maximally.
  for (int gid = 0; gid < 5; ++gid) {
    ASSERT_EQ(h.sharded().shard_of(gid), 0);
    h.RemoveGid(gid);
    if (::testing::Test::HasFatalFailure()) return;
  }
  h.Rebalance();
  if (::testing::Test::HasFatalFailure()) return;
  h.CheckAgainstRebuild();
  if (::testing::Test::HasFatalFailure()) return;
  // And the rebalanced routing must survive persistence (manifest v3
  // persists explicit local ids precisely because migration breaks the
  // "locals ascend with globals" rule).
  h.SaveLoadRoundTrip("rebalance");
  if (::testing::Test::HasFatalFailure()) return;
  h.CheckAgainstRebuild();
}

// The lifecycle suites above run the default trie backend (mutation
// distance) only; this pins the in-place rewrite of every class backend —
// trie re-insert, R-tree re-insert, VP-tree buffer filtering — against a
// from-scratch rebuild over the survivors, including a persistence round
// trip of the compacted index. (The VP-tree branch once shipped a
// self-move-assign bug no trie-only schedule could catch.)
TEST(CompactionTest, EveryBackendCompactsEquivalently) {
  struct Case {
    DistanceSpec spec;
    ClassBackend backend;
    const char* name;
  };
  const Case cases[] = {
      {DistanceSpec::EdgeMutation(), ClassBackend::kTrie, "mutation/trie"},
      {DistanceSpec::EdgeMutation(), ClassBackend::kVpTree, "mutation/vptree"},
      {DistanceSpec::EdgeLinear(), ClassBackend::kRTree, "linear/rtree"},
      {DistanceSpec::EdgeLinear(), ClassBackend::kVpTree, "linear/vptree"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    MoleculeGeneratorOptions gopt;
    gopt.seed = 83;
    gopt.mean_vertices = 12;
    gopt.max_vertices = 24;
    MoleculeGenerator gen(gopt);
    GraphDatabase db = gen.Generate(18);
    // Path skeletons keep every backend's class set small but populated.
    std::vector<Graph> features;
    for (int k = 1; k <= 3; ++k) {
      Graph path;
      path.AddVertex(kNoLabel);
      for (int i = 0; i < k; ++i) {
        path.AddVertex(kNoLabel);
        ASSERT_TRUE(path.AddEdge(i, i + 1).ok());
      }
      features.push_back(path);
    }
    FragmentIndexOptions iopt;
    iopt.max_fragment_edges = 3;
    iopt.spec = c.spec;
    iopt.backend = c.backend;
    auto index = FragmentIndex::Build(db, features, iopt);
    ASSERT_TRUE(index.ok()) << index.status().ToString();

    GraphDatabase live_db;
    for (int gid = 0; gid < db.size(); ++gid) {
      if (gid % 3 == 1) {
        ASSERT_TRUE(index.value().RemoveGraph(gid).ok());
      } else {
        live_db.Add(db.at(gid));
      }
    }
    index.value().Compact();
    ASSERT_EQ(index.value().db_size(), live_db.size());
    auto rebuilt = FragmentIndex::Build(live_db, features, iopt);
    ASSERT_TRUE(rebuilt.ok());

    // The compacted index must answer like the rebuild — before and after
    // its own persistence round trip.
    std::stringstream buffer;
    ASSERT_TRUE(index.value().Save(buffer).ok());
    auto reloaded = FragmentIndex::Load(buffer);
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

    PisOptions popt;
    popt.sigma = 2.0;
    PisEngine compacted_engine(&live_db, &index.value(), popt);
    PisEngine reloaded_engine(&live_db, &reloaded.value(), popt);
    PisEngine rebuilt_engine(&live_db, &rebuilt.value(), popt);
    QuerySampler sampler(&db, {.seed = 51, .strip_vertex_labels = true});
    for (int trial = 0; trial < 4; ++trial) {
      auto q = sampler.Sample(3);
      ASSERT_TRUE(q.ok());
      auto want = rebuilt_engine.Search(q.value());
      auto got = compacted_engine.Search(q.value());
      auto got_reloaded = reloaded_engine.Search(q.value());
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(got_reloaded.ok()) << got_reloaded.status().ToString();
      EXPECT_EQ(want.value().answers, got.value().answers);
      EXPECT_EQ(want.value().candidates, got.value().candidates);
      EXPECT_EQ(want.value().answers, got_reloaded.value().answers);
      EXPECT_EQ(want.value().candidates, got_reloaded.value().candidates);
    }
  }
}

TEST(CompactionTest, RebalanceOnBalancedIndexIsANoOp) {
  LifecycleHarness::Options opt;
  opt.num_shards = 3;
  opt.seed = 5;
  opt.initial_graphs = 12;
  LifecycleHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;
  auto migrated = h.sharded().Rebalance(h.slots());
  ASSERT_TRUE(migrated.ok());
  EXPECT_EQ(migrated.value(), 0);
  EXPECT_EQ(h.sharded().compaction_epoch(), 0);
}

}  // namespace
}  // namespace pis
