// End-to-end correctness of the PIS engine: soundness and completeness
// against the naive scan, candidate-set containment versus topoPrune, and
// the Eq. 2 lower-bound property.
#include "core/pis.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/naive_search.h"
#include "core/topo_prune.h"
#include "distance/superimposed.h"
#include "graph/generator.h"
#include "graph/query_sampler.h"
#include "mining/feature_selector.h"
#include "mining/gspan.h"

namespace pis {
namespace {

struct Fixture {
  GraphDatabase db;
  std::vector<Graph> features;
  Result<FragmentIndex> index = Status::Internal("unbuilt");

  explicit Fixture(int db_size, uint64_t seed, int max_fragment_edges = 4,
                   DistanceSpec spec = DistanceSpec::EdgeMutation()) {
    MoleculeGeneratorOptions gopt;
    gopt.seed = seed;
    gopt.mean_vertices = 16;
    gopt.max_vertices = 60;
    MoleculeGenerator gen(gopt);
    db = gen.Generate(db_size);

    GraphDatabase skeletons;
    for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
    GspanOptions mine;
    mine.min_support = std::max(2, db_size / 10);
    mine.max_edges = max_fragment_edges;
    auto patterns = MineFrequentSubgraphs(skeletons, mine);
    EXPECT_TRUE(patterns.ok());
    FeatureSelectorOptions select;
    select.gamma = 1.2;
    auto selected =
        SelectDiscriminativeFeatures(patterns.value(), db_size, select);
    EXPECT_TRUE(selected.ok());
    for (size_t idx : selected.value()) {
      features.push_back(patterns.value()[idx].graph);
    }

    FragmentIndexOptions iopt;
    iopt.max_fragment_edges = max_fragment_edges;
    iopt.spec = spec;
    index = FragmentIndex::Build(db, features, iopt);
    EXPECT_TRUE(index.ok());
  }
};

TEST(PisEngineTest, AnswersMatchNaiveScan) {
  Fixture fx(40, 11);
  PisOptions options;
  options.sigma = 2;
  PisEngine engine(&fx.db, &fx.index.value(), options);
  QuerySampler sampler(&fx.db, {.seed = 5, .strip_vertex_labels = true});
  int nonempty = 0;
  for (int trial = 0; trial < 8; ++trial) {
    auto query = sampler.Sample(8);
    ASSERT_TRUE(query.ok());
    auto pis = engine.Search(query.value());
    ASSERT_TRUE(pis.ok()) << pis.status().ToString();
    SearchResult naive =
        NaiveSearch(fx.db, query.value(), fx.index.value().options().spec, 2);
    EXPECT_EQ(pis.value().answers, naive.answers) << "trial " << trial;
    if (!naive.answers.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 0) << "workload produced no answers; test is vacuous";
}

// Regression: pass 2 used to re-issue the partition fragments' range
// queries even though pass 1 had already answered them; they are now served
// from the pass-1 cache, so the physical query count is exactly one per
// enumerated fragment.
TEST(PisEngineTest, Pass2ReusesPass1RangeQueries) {
  Fixture fx(40, 11);
  PisOptions options;
  options.sigma = 2;
  PisEngine engine(&fx.db, &fx.index.value(), options);
  QuerySampler sampler(&fx.db, {.seed = 13, .strip_vertex_labels = true});
  int with_partition = 0;
  for (int trial = 0; trial < 8; ++trial) {
    auto query = sampler.Sample(8);
    ASSERT_TRUE(query.ok());
    auto filtered = engine.Filter(query.value());
    ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
    const QueryStats& stats = filtered.value().stats;
    EXPECT_EQ(stats.range_queries, stats.fragments_enumerated);
    if (stats.partition_size > 0) ++with_partition;
  }
  EXPECT_GT(with_partition, 0)
      << "no query selected a partition; test is vacuous";
}

TEST(PisEngineTest, CandidatesContainAnswersAndSubsetTopoPrune) {
  Fixture fx(40, 23);
  PisOptions options;
  options.sigma = 1;
  PisEngine engine(&fx.db, &fx.index.value(), options);
  TopoPruneEngine topo(&fx.db, &fx.index.value());
  QuerySampler sampler(&fx.db, {.seed = 9, .strip_vertex_labels = true});
  for (int trial = 0; trial < 8; ++trial) {
    auto query = sampler.Sample(10);
    ASSERT_TRUE(query.ok());
    auto filtered = engine.Filter(query.value());
    ASSERT_TRUE(filtered.ok());
    auto topo_candidates = topo.Filter(query.value(), nullptr);
    ASSERT_TRUE(topo_candidates.ok());
    // PIS candidates ⊆ topoPrune candidates (PIS adds distance pruning).
    EXPECT_TRUE(std::includes(
        topo_candidates.value().begin(), topo_candidates.value().end(),
        filtered.value().candidates.begin(), filtered.value().candidates.end()));
    // No false dismissal: every true answer is a PIS candidate.
    SearchResult naive =
        NaiveSearch(fx.db, query.value(), fx.index.value().options().spec, 1);
    EXPECT_TRUE(std::includes(filtered.value().candidates.begin(),
                              filtered.value().candidates.end(),
                              naive.answers.begin(), naive.answers.end()));
  }
}

TEST(PisEngineTest, PartitionIsVertexDisjoint) {
  Fixture fx(30, 31);
  PisOptions options;
  options.sigma = 2;
  PisEngine engine(&fx.db, &fx.index.value(), options);
  QuerySampler sampler(&fx.db, {.seed = 17, .strip_vertex_labels = true});
  for (int trial = 0; trial < 5; ++trial) {
    auto query = sampler.Sample(12);
    ASSERT_TRUE(query.ok());
    auto filtered = engine.Filter(query.value());
    ASSERT_TRUE(filtered.ok());
    std::vector<bool> used(query.value().NumVertices(), false);
    for (int fi : filtered.value().partition) {
      for (VertexId v : filtered.value().fragments[fi].vertices) {
        EXPECT_FALSE(used[v]) << "partition fragments share vertex " << v;
        used[v] = true;
      }
    }
  }
}

TEST(PisEngineTest, LowerBoundHolds) {
  // Eq. 2: sum of partition fragment distances <= true superimposed
  // distance, for every database graph that contains the query.
  Fixture fx(25, 47);
  PisOptions options;
  options.sigma = 3;
  PisEngine engine(&fx.db, &fx.index.value(), options);
  auto model = fx.index.value().options().spec.MakeCostModel();
  QuerySampler sampler(&fx.db, {.seed = 29, .strip_vertex_labels = true});
  for (int trial = 0; trial < 5; ++trial) {
    auto query = sampler.Sample(9);
    ASSERT_TRUE(query.ok());
    auto filtered = engine.Filter(query.value());
    ASSERT_TRUE(filtered.ok());
    for (int gid = 0; gid < fx.db.size(); ++gid) {
      double truth = MinSuperimposedDistance(query.value(), fx.db.at(gid), *model);
      if (truth > options.sigma) continue;  // only bounded graphs checked
      double bound = 0;
      for (int fi : filtered.value().partition) {
        Graph frag_graph;  // rebuild fragment distance via index range query
        // Use the index directly: minimum distance for this fragment/graph.
        double min_d = kInfiniteDistance;
        ASSERT_TRUE(fx.index.value()
                        .RangeQuery(filtered.value().fragments[fi].prepared,
                                    options.sigma,
                                    [&](int g2, double d) {
                                      if (g2 == gid) min_d = std::min(min_d, d);
                                    })
                        .ok());
        ASSERT_NE(min_d, kInfiniteDistance);
        bound += min_d;
      }
      EXPECT_LE(bound, truth + 1e-9) << "gid " << gid;
    }
  }
}

TEST(PisEngineTest, SigmaZeroIsExactLabeledSearch) {
  Fixture fx(30, 53);
  PisOptions options;
  options.sigma = 0;
  PisEngine engine(&fx.db, &fx.index.value(), options);
  QuerySampler sampler(&fx.db, {.seed = 41, .strip_vertex_labels = true});
  auto query = sampler.Sample(8);
  ASSERT_TRUE(query.ok());
  auto pis = engine.Search(query.value());
  ASSERT_TRUE(pis.ok());
  SearchResult naive =
      NaiveSearch(fx.db, query.value(), fx.index.value().options().spec, 0);
  EXPECT_EQ(pis.value().answers, naive.answers);
}

TEST(PisEngineTest, AllPartitionAlgorithmsAreSound) {
  Fixture fx(25, 61);
  QuerySampler sampler(&fx.db, {.seed = 3, .strip_vertex_labels = true});
  auto query = sampler.Sample(10);
  ASSERT_TRUE(query.ok());
  SearchResult naive =
      NaiveSearch(fx.db, query.value(), fx.index.value().options().spec, 2);
  for (PartitionAlgorithm algo :
       {PartitionAlgorithm::kGreedy, PartitionAlgorithm::kEnhancedGreedy,
        PartitionAlgorithm::kExact, PartitionAlgorithm::kSingleBest}) {
    PisOptions options;
    options.sigma = 2;
    options.partition_algorithm = algo;
    PisEngine engine(&fx.db, &fx.index.value(), options);
    auto pis = engine.Search(query.value());
    ASSERT_TRUE(pis.ok());
    EXPECT_EQ(pis.value().answers, naive.answers)
        << "algorithm " << static_cast<int>(algo);
  }
}

TEST(PisEngineTest, LinearDistanceEndToEnd) {
  Fixture fx(25, 71, 3, DistanceSpec::EdgeLinear());
  PisOptions options;
  options.sigma = 0.15;
  PisEngine engine(&fx.db, &fx.index.value(), options);
  QuerySampler sampler(&fx.db, {.seed = 13, .strip_vertex_labels = true});
  int nonempty = 0;
  for (int trial = 0; trial < 6; ++trial) {
    auto query = sampler.Sample(6);
    ASSERT_TRUE(query.ok());
    auto pis = engine.Search(query.value());
    ASSERT_TRUE(pis.ok());
    SearchResult naive = NaiveSearch(fx.db, query.value(),
                                     fx.index.value().options().spec, 0.15);
    EXPECT_EQ(pis.value().answers, naive.answers);
    if (!naive.answers.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 0);
}

TEST(PisEngineTest, TopoPruneMatchesNaiveAnswersToo) {
  Fixture fx(30, 83);
  TopoPruneEngine topo(&fx.db, &fx.index.value());
  QuerySampler sampler(&fx.db, {.seed = 19, .strip_vertex_labels = true});
  for (int trial = 0; trial < 5; ++trial) {
    auto query = sampler.Sample(8);
    ASSERT_TRUE(query.ok());
    auto result = topo.Search(query.value(), 2);
    ASSERT_TRUE(result.ok());
    SearchResult naive =
        NaiveSearch(fx.db, query.value(), fx.index.value().options().spec, 2);
    EXPECT_EQ(result.value().answers, naive.answers);
  }
}

TEST(PisEngineTest, EpsilonFilterKeepsSoundness) {
  Fixture fx(30, 97);
  QuerySampler sampler(&fx.db, {.seed = 23, .strip_vertex_labels = true});
  auto query = sampler.Sample(10);
  ASSERT_TRUE(query.ok());
  SearchResult naive =
      NaiveSearch(fx.db, query.value(), fx.index.value().options().spec, 2);
  for (double epsilon : {0.0, 0.1, 0.5}) {
    PisOptions options;
    options.sigma = 2;
    options.epsilon = epsilon;
    PisEngine engine(&fx.db, &fx.index.value(), options);
    auto pis = engine.Search(query.value());
    ASSERT_TRUE(pis.ok());
    EXPECT_EQ(pis.value().answers, naive.answers) << "epsilon " << epsilon;
  }
}

TEST(PisEngineTest, LambdaVariantsKeepSoundness) {
  Fixture fx(30, 101);
  QuerySampler sampler(&fx.db, {.seed = 37, .strip_vertex_labels = true});
  auto query = sampler.Sample(10);
  ASSERT_TRUE(query.ok());
  SearchResult naive =
      NaiveSearch(fx.db, query.value(), fx.index.value().options().spec, 2);
  for (double lambda : {0.5, 1.0, 2.0}) {
    PisOptions options;
    options.sigma = 2;
    options.lambda = lambda;
    PisEngine engine(&fx.db, &fx.index.value(), options);
    auto pis = engine.Search(query.value());
    ASSERT_TRUE(pis.ok());
    EXPECT_EQ(pis.value().answers, naive.answers) << "lambda " << lambda;
  }
}

}  // namespace
}  // namespace pis
