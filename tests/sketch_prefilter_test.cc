// The superimposed-sketch prefilter (ROADMAP item 2): GraphSketch unit
// coverage — no false negatives by construction, compaction remaps rows,
// serialization round-trips bit-exactly — plus the differential property
// suite: over randomized add / remove / compact / rebalance / save-load
// schedules, a sketch-enabled engine must return answers, candidates, and
// every shared filter counter identical to the sketch-off run. The sketch
// may only discard graphs the pass-1 intersection would discard anyway;
// this suite is what makes that claim checkable rather than reviewed.
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>
#include <vector>

#include "engine_test_util.h"
#include "index/graph_sketch.h"
#include "util/random.h"
#include "util/serde.h"

namespace pis {
namespace {

using ::pis::testing::LifecycleHarness;

TEST(GraphSketchTest, ValidParamsEdges) {
  EXPECT_TRUE(GraphSketch::ValidParams(64, 1));
  EXPECT_TRUE(GraphSketch::ValidParams(256, 4));
  EXPECT_TRUE(GraphSketch::ValidParams(1 << 20, 64));
  EXPECT_FALSE(GraphSketch::ValidParams(0, 4));       // no bits
  EXPECT_FALSE(GraphSketch::ValidParams(-64, 4));     // negative
  EXPECT_FALSE(GraphSketch::ValidParams(100, 4));     // not a word multiple
  EXPECT_FALSE(GraphSketch::ValidParams(63, 4));      // under one word
  EXPECT_FALSE(GraphSketch::ValidParams((1 << 20) + 64, 4));  // absurd
  EXPECT_FALSE(GraphSketch::ValidParams(256, 0));     // no hashes
  EXPECT_FALSE(GraphSketch::ValidParams(256, 65));    // > 64 hashes
  EXPECT_TRUE(
      GraphSketch::ValidParams(GraphSketch::kDefaultBits,
                               GraphSketch::kDefaultHashes));
}

// The defining property: a class that was added to a graph can never be
// reported absent, for any (bits, hashes) configuration.
TEST(GraphSketchTest, AddedClassesNeverReadAsAbsent) {
  for (const auto& [bits, hashes] : {std::pair{64, 1}, std::pair{128, 3},
                                     std::pair{256, 4}, std::pair{512, 8}}) {
    GraphSketch sketch(bits, hashes);
    sketch.AddGraphs(5);
    Rng rng(static_cast<uint64_t>(bits * 100 + hashes));
    std::vector<std::vector<int>> classes_of(5);
    for (int gid = 0; gid < 5; ++gid) {
      const int count = 1 + rng.UniformInt(0, 30);
      for (int i = 0; i < count; ++i) {
        const int class_id = rng.UniformInt(0, 4000);
        sketch.AddClass(gid, class_id);
        classes_of[gid].push_back(class_id);
      }
    }
    for (int gid = 0; gid < 5; ++gid) {
      // Single-class masks and the full superimposed mask must both pass.
      for (int class_id : classes_of[gid]) {
        EXPECT_TRUE(sketch.MightContainAll(gid, sketch.MakeMask({class_id})))
            << bits << "b/" << hashes << "h gid=" << gid
            << " class=" << class_id;
      }
      EXPECT_TRUE(
          sketch.MightContainAll(gid, sketch.MakeMask(classes_of[gid])));
    }
  }
}

TEST(GraphSketchTest, MissingClassIsUsuallyPruned) {
  GraphSketch sketch(256, 4);
  sketch.AddGraphs(1);
  sketch.AddClass(0, 7);
  // An empty second graph fails every nonempty mask deterministically.
  sketch.AddGraphs(1);
  int pruned = 0;
  for (int class_id = 100; class_id < 200; ++class_id) {
    if (!sketch.MightContainAll(0, sketch.MakeMask({7, class_id}))) ++pruned;
    EXPECT_FALSE(sketch.MightContainAll(1, sketch.MakeMask({class_id})));
  }
  // A 256-bit block with one class set prunes a random absent class with
  // probability ~(1 - (1-16/256)^4)... in fact nearly always; demand a
  // conservative majority so the test is immune to hash accidents.
  EXPECT_GT(pruned, 80);
}

TEST(GraphSketchTest, EmptyMaskMatchesEverything) {
  GraphSketch sketch(128, 2);
  sketch.AddGraphs(2);
  const std::vector<uint64_t> mask = sketch.MakeMask({});
  EXPECT_TRUE(sketch.MightContainAll(0, mask));
  EXPECT_TRUE(sketch.MightContainAll(1, mask));
}

TEST(GraphSketchTest, AddClassIsIdempotentAndDuplicateMaskIdsHarmless) {
  GraphSketch once(256, 4);
  once.AddGraphs(1);
  once.AddClass(0, 42);
  GraphSketch thrice(256, 4);
  thrice.AddGraphs(1);
  for (int i = 0; i < 3; ++i) thrice.AddClass(0, 42);
  std::stringstream a, b;
  {
    BinaryWriter wa(a), wb(b);
    once.Serialize(&wa);
    thrice.Serialize(&wb);
  }
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(once.MakeMask({42}), once.MakeMask({42, 42, 42}));
}

TEST(GraphSketchTest, CompactKeepsSurvivorRowsAndDropsTheRest) {
  GraphSketch sketch(128, 3);
  sketch.AddGraphs(4);
  for (int gid = 0; gid < 4; ++gid) sketch.AddClass(gid, 10 + gid);
  // Drop rows 0 and 2; densify 1 -> 0 and 3 -> 1 (order-preserving, as
  // FragmentIndex::Compact produces).
  sketch.Compact({-1, 0, -1, 1});
  ASSERT_EQ(sketch.num_graphs(), 2);
  EXPECT_TRUE(sketch.MightContainAll(0, sketch.MakeMask({11})));
  EXPECT_TRUE(sketch.MightContainAll(1, sketch.MakeMask({13})));
  EXPECT_FALSE(sketch.MightContainAll(0, sketch.MakeMask({10})));
  EXPECT_FALSE(sketch.MightContainAll(1, sketch.MakeMask({12})));
}

TEST(GraphSketchTest, SerializeDeserializeRoundTripsBitExactly) {
  GraphSketch sketch(192, 5);
  sketch.AddGraphs(7);
  Rng rng(99);
  for (int gid = 0; gid < 7; ++gid) {
    for (int i = rng.UniformInt(0, 6); i > 0; --i) {
      sketch.AddClass(gid, rng.UniformInt(0, 500));
    }
  }
  std::stringstream buffer;
  {
    BinaryWriter writer(buffer);
    sketch.Serialize(&writer);
    ASSERT_TRUE(writer.ok());
  }
  const std::string first = buffer.str();
  BinaryReader reader(buffer);
  auto loaded = GraphSketch::Deserialize(&reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().bits_per_graph(), 192);
  EXPECT_EQ(loaded.value().num_hashes(), 5);
  EXPECT_EQ(loaded.value().num_graphs(), 7);
  std::stringstream again;
  {
    BinaryWriter writer(again);
    loaded.value().Serialize(&writer);
  }
  EXPECT_EQ(again.str(), first);
}

TEST(GraphSketchTest, DeserializeRejectsBadParamsAndTruncation) {
  // Implausible parameters must fail before any allocation.
  {
    std::stringstream buffer;
    BinaryWriter writer(buffer);
    writer.I32(100);  // not a multiple of 64
    writer.I32(4);
    writer.U64(0);
    BinaryReader reader(buffer);
    auto r = GraphSketch::Deserialize(&reader);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
  // A payload that is not whole graph blocks is structural corruption.
  {
    std::stringstream buffer;
    BinaryWriter writer(buffer);
    writer.I32(128);  // 2 words per graph
    writer.I32(4);
    writer.U64(3);  // 3 words cannot be whole 2-word blocks
    for (int i = 0; i < 3; ++i) writer.U64(0);
    BinaryReader reader(buffer);
    auto r = GraphSketch::Deserialize(&reader);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
  // Truncation anywhere in the payload latches the reader.
  {
    GraphSketch sketch(128, 2);
    sketch.AddGraphs(3);
    std::stringstream buffer;
    BinaryWriter writer(buffer);
    sketch.Serialize(&writer);
    const std::string bytes = buffer.str();
    for (size_t cut : {size_t{2}, size_t{10}, bytes.size() - 8}) {
      std::stringstream truncated(bytes.substr(0, cut));
      BinaryReader reader(truncated);
      auto r = GraphSketch::Deserialize(&reader);
      EXPECT_FALSE(r.ok()) << "cut at " << cut;
    }
  }
}

// The property suite: the same randomized lifecycle schedules the
// update-equivalence and compaction suites run, but the oracle is
// sketch-off vs sketch-on over the SAME incrementally-maintained indexes
// (sharded and flat). Equivalence must hold at every step — right after
// builds, mid-tombstone, after re-densifying compactions, after shard
// rebalances, and across persistence round trips, where the sketch is
// reloaded (v4) rather than rebuilt.
//
// (num_shards, seed).
class SketchEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SketchEquivalenceTest, LifecycleInterleavingsPreserveResults) {
  LifecycleHarness::Options opt;
  opt.num_shards = std::get<0>(GetParam());
  opt.seed = std::get<1>(GetParam());
  LifecycleHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;

  h.CheckSketchEquivalence();
  constexpr int kSteps = 12;
  for (int step = 0; step < kSteps; ++step) {
    const int action = h.rng().UniformInt(0, 5);
    if (h.live_count() <= 2 || (action <= 1 && h.CanAdd())) {
      if (h.CanAdd()) {
        h.AddOne();
      } else {
        h.RemoveOne();
      }
    } else if (action == 2) {
      h.RemoveOne();
    } else if (action == 3) {
      h.CompactAll();
    } else if (action == 4) {
      h.Rebalance();
    } else {
      h.RemoveOne();
      if (!::testing::Test::HasFatalFailure()) h.CompactAll();
    }
    if (::testing::Test::HasFatalFailure()) return;
    h.CheckSketchEquivalence();
    if (::testing::Test::HasFatalFailure()) return;
  }

  // Persistence: the reloaded (v4) sketch must behave identically to the
  // incrementally maintained one it was saved from.
  h.SaveLoadRoundTrip("sketch_eq");
  if (::testing::Test::HasFatalFailure()) return;
  h.CheckSketchEquivalence();
}

INSTANTIATE_TEST_SUITE_P(ShardsBySeeds, SketchEquivalenceTest,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace pis
