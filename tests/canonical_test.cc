#include "canonical/min_dfs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "canonical/dfs_code.h"
#include "graph/generator.h"
#include "isomorphism/vf2.h"
#include "util/random.h"

namespace pis {
namespace {

Graph Path(int edges, Label elabel = 1) {
  Graph g;
  g.AddVertex(1);
  for (int i = 0; i < edges; ++i) {
    g.AddVertex(1);
    EXPECT_TRUE(g.AddEdge(i, i + 1, elabel).ok());
  }
  return g;
}

Graph Cycle(int n, Label elabel = 1) {
  Graph g;
  for (int i = 0; i < n; ++i) g.AddVertex(1);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(g.AddEdge(i, (i + 1) % n, elabel).ok());
  }
  return g;
}

TEST(DfsCodeTest, ForwardBackwardClassification) {
  EXPECT_TRUE((DfsEdge{0, 1, 0, 0, 0}).IsForward());
  EXPECT_FALSE((DfsEdge{2, 0, 0, 0, 0}).IsForward());
}

TEST(DfsCodeTest, CompareBackwardBeforeForward) {
  // From the same state, backward edges precede forward extensions.
  DfsEdge backward{2, 0, 1, 1, 1};
  DfsEdge forward{2, 3, 1, 1, 1};
  EXPECT_LT(CompareDfsEdges(backward, forward), 0);
  EXPECT_GT(CompareDfsEdges(forward, backward), 0);
}

TEST(DfsCodeTest, CompareForwardDeeperOriginFirst) {
  DfsEdge deep{2, 3, 1, 1, 1};
  DfsEdge shallow{0, 3, 1, 1, 1};
  EXPECT_LT(CompareDfsEdges(deep, shallow), 0);
}

TEST(DfsCodeTest, CompareFallsBackToLabels) {
  DfsEdge a{0, 1, 1, 1, 1};
  DfsEdge b{0, 1, 1, 2, 1};
  EXPECT_LT(CompareDfsEdges(a, b), 0);
  EXPECT_EQ(CompareDfsEdges(a, a), 0);
}

TEST(DfsCodeTest, ToGraphRoundTrip) {
  DfsCode code({{0, 1, 5, 7, 6}, {1, 2, 6, 8, 5}, {2, 0, 5, 9, 5}});
  Result<Graph> g = code.ToGraph();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().NumVertices(), 3);
  EXPECT_EQ(g.value().NumEdges(), 3);
  EXPECT_EQ(g.value().VertexLabel(0), 5);
  EXPECT_EQ(g.value().VertexLabel(1), 6);
  EXPECT_EQ(g.value().FindEdge(2, 0) != kInvalidEdge, true);
}

TEST(DfsCodeTest, ToGraphRejectsDisconnected) {
  // Indices 2,3 unreachable from 0,1 is impossible in a DFS code, but a
  // malformed code can encode it.
  DfsCode code({{0, 1, 1, 1, 1}, {2, 3, 1, 1, 1}});
  EXPECT_FALSE(code.ToGraph().ok());
}

TEST(MinDfsTest, RejectsEmptyAndDisconnected) {
  Graph empty;
  EXPECT_FALSE(MinDfsCode(empty).ok());
  Graph two;
  two.AddVertex(1);
  two.AddVertex(1);
  EXPECT_FALSE(MinDfsCode(two).ok());
}

TEST(MinDfsTest, SingleVertex) {
  Graph g;
  g.AddVertex(3);
  Result<CanonicalForm> form = MinDfsCode(g);
  ASSERT_TRUE(form.ok());
  EXPECT_TRUE(form.value().code.empty());
  ASSERT_EQ(form.value().embeddings.size(), 1u);
  EXPECT_EQ(form.value().Key(), "n1|");
}

TEST(MinDfsTest, SingleEdgeOrientsByLabel) {
  Graph g;
  g.AddVertex(5);
  g.AddVertex(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 7).ok());
  Result<CanonicalForm> form = MinDfsCode(g);
  ASSERT_TRUE(form.ok());
  ASSERT_EQ(form.value().code.size(), 1u);
  const DfsEdge& e = form.value().code[0];
  EXPECT_EQ(e.from_label, 2);  // smaller label becomes index 0
  EXPECT_EQ(e.to_label, 5);
  ASSERT_EQ(form.value().embeddings.size(), 1u);
  EXPECT_EQ(form.value().embeddings[0].vertex_order,
            (std::vector<VertexId>{1, 0}));
}

TEST(MinDfsTest, IsomorphicGraphsShareKey) {
  Graph a = Cycle(6);
  // Same cycle built in a scrambled vertex order.
  Rng rng(3);
  std::vector<VertexId> perm(6);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(&perm);
  Graph b = a.Relabeled(perm);
  Result<CanonicalForm> fa = MinDfsCode(a);
  Result<CanonicalForm> fb = MinDfsCode(b);
  ASSERT_TRUE(fa.ok() && fb.ok());
  EXPECT_EQ(fa.value().Key(), fb.value().Key());
}

TEST(MinDfsTest, NonIsomorphicGraphsDiffer) {
  Graph path = Path(5);   // 6 vertices, 5 edges
  Graph star;             // 6 vertices, 5 edges
  star.AddVertex(1);
  for (int i = 0; i < 5; ++i) {
    star.AddVertex(1);
    ASSERT_TRUE(star.AddEdge(0, i + 1, 1).ok());
  }
  Result<CanonicalForm> fp = MinDfsCode(path);
  Result<CanonicalForm> fs = MinDfsCode(star);
  ASSERT_TRUE(fp.ok() && fs.ok());
  EXPECT_NE(fp.value().Key(), fs.value().Key());
}

TEST(MinDfsTest, LabelsDistinguishWhenRequested) {
  Graph a = Path(2, 1);
  Graph b = Path(2, 1);
  b.SetEdgeLabel(1, 2);
  CanonicalOptions labeled;
  labeled.use_labels = true;
  EXPECT_NE(MinDfsCode(a, labeled).value().Key(),
            MinDfsCode(b, labeled).value().Key());
  CanonicalOptions skeleton;
  skeleton.use_labels = false;
  EXPECT_EQ(MinDfsCode(a, skeleton).value().Key(),
            MinDfsCode(b, skeleton).value().Key());
}

TEST(MinDfsTest, EmbeddingCountEqualsAutomorphismGroupOrder) {
  struct Case {
    Graph g;
    size_t automorphisms;
  };
  std::vector<Case> cases;
  cases.push_back({Path(3), 2});       // path: 2 (reversal)
  cases.push_back({Cycle(6), 12});     // hexagon: dihedral group D6
  Graph triangle_pendant = Cycle(3);   // triangle + pendant edge: 2
  triangle_pendant.AddVertex(1);
  ASSERT_TRUE(triangle_pendant.AddEdge(0, 3, 1).ok());
  cases.push_back({triangle_pendant, 2});
  for (const Case& c : cases) {
    Result<CanonicalForm> form = MinDfsCode(c.g);
    ASSERT_TRUE(form.ok());
    EXPECT_EQ(form.value().embeddings.size(), c.automorphisms);
    EXPECT_EQ(EnumerateAutomorphisms(c.g).size(), c.automorphisms);
  }
}

TEST(MinDfsTest, EmbeddingsRealizeTheCode) {
  Graph g = Cycle(5);
  g.SetEdgeLabel(2, 9);
  Result<CanonicalForm> form = MinDfsCode(g);
  ASSERT_TRUE(form.ok());
  for (const CanonicalEmbedding& emb : form.value().embeddings) {
    ASSERT_EQ(emb.vertex_order.size(), 5u);
    ASSERT_EQ(emb.edge_order.size(), 5u);
    // Rebuild the code edges from the embedding and compare labels.
    std::vector<int> dfs_index(g.NumVertices(), -1);
    for (size_t i = 0; i < emb.vertex_order.size(); ++i) {
      dfs_index[emb.vertex_order[i]] = static_cast<int>(i);
    }
    for (size_t k = 0; k < form.value().code.size(); ++k) {
      const DfsEdge& ce = form.value().code[k];
      const Edge& ge = g.GetEdge(emb.edge_order[k]);
      // The graph edge's endpoints must map to the code indices.
      int iu = dfs_index[ge.u];
      int iv = dfs_index[ge.v];
      EXPECT_TRUE((iu == ce.from && iv == ce.to) ||
                  (iu == ce.to && iv == ce.from));
      EXPECT_EQ(ge.label, ce.edge_label);
    }
  }
}

TEST(MinDfsTest, IsMinAcceptsCanonicalRejectsOther) {
  Graph g = Cycle(4);
  g.SetVertexLabel(0, 2);
  Result<CanonicalForm> form = MinDfsCode(g);
  ASSERT_TRUE(form.ok());
  Result<bool> is_min = IsMinDfsCode(form.value().code);
  ASSERT_TRUE(is_min.ok());
  EXPECT_TRUE(is_min.value());
  // A non-canonical code of the same square: starts at the (larger) label-2
  // vertex, so its first tuple already exceeds the minimum.
  DfsCode other({{0, 1, 2, 1, 1}, {1, 2, 1, 1, 1}, {2, 3, 1, 1, 1}, {3, 0, 1, 1, 2}});
  Result<bool> other_min = IsMinDfsCode(other);
  ASSERT_TRUE(other_min.ok());
  EXPECT_FALSE(other_min.value());
}

// Property: the canonical key is invariant under random vertex
// permutations, for random labeled graphs.
class CanonicalPermutationTest : public ::testing::TestWithParam<int> {};

TEST_P(CanonicalPermutationTest, KeyInvariantUnderPermutation) {
  Rng rng(GetParam());
  RandomGraphOptions options;
  options.num_vertices = 3 + GetParam() % 6;
  options.num_edges = options.num_vertices + GetParam() % 4;
  options.vertex_alphabet = 2;
  options.edge_alphabet = 2;
  Graph g = GenerateRandomConnectedGraph(options, &rng);
  Result<CanonicalForm> base = MinDfsCode(g);
  ASSERT_TRUE(base.ok());
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<VertexId> perm(g.NumVertices());
    std::iota(perm.begin(), perm.end(), 0);
    rng.Shuffle(&perm);
    Result<CanonicalForm> permuted = MinDfsCode(g.Relabeled(perm));
    ASSERT_TRUE(permuted.ok());
    EXPECT_EQ(base.value().Key(), permuted.value().Key());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalPermutationTest,
                         ::testing::Range(0, 25));

// Property: two random graphs have equal keys iff they are isomorphic
// (checked against VF2 with labels).
class CanonicalIsoAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(CanonicalIsoAgreementTest, KeyEqualityMatchesIsomorphism) {
  Rng rng(1000 + GetParam());
  RandomGraphOptions options;
  options.num_vertices = 4 + GetParam() % 3;
  options.num_edges = options.num_vertices + 1;
  options.vertex_alphabet = 2;
  options.edge_alphabet = 1;
  Graph a = GenerateRandomConnectedGraph(options, &rng);
  Graph b = GenerateRandomConnectedGraph(options, &rng);
  MatchOptions match;
  match.match_vertex_labels = true;
  match.match_edge_labels = true;
  bool iso = a.NumVertices() == b.NumVertices() && a.NumEdges() == b.NumEdges() &&
             AreIsomorphic(a, b, match);
  bool keys_equal =
      MinDfsCode(a).value().Key() == MinDfsCode(b).value().Key();
  EXPECT_EQ(iso, keys_equal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalIsoAgreementTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace pis
