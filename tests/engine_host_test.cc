// EngineHost: snapshot-isolated serving semantics. Queries through the host
// must equal the direct sharded engine; mutations must be visible exactly
// from the snapshot they publish (and invisible to snapshots pinned
// before); the copy-on-write shard layer must keep pinned handles frozen;
// and the background compactor must reclaim dead postings without changing
// any answer.
#include "server/engine_host.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "engine_test_util.h"
#include "graph/io.h"
#include "util/json.h"

namespace pis {
namespace {

using testing::EngineFixture;
using testing::SampleQueries;

/// Builds db + features + sharded index + queries once per test.
struct HostFixture {
  EngineFixture fx;
  Result<ShardedFragmentIndex> sharded = Status::Internal("unbuilt");
  std::vector<Graph> queries;
  PisOptions options;

  explicit HostFixture(int db_size, uint64_t seed, int num_shards = 3,
                       double compact_dead_ratio = 0.0)
      : fx(db_size, seed) {
    EXPECT_TRUE(fx.index.ok());
    sharded = ShardedFragmentIndex::Build(fx.db, fx.features,
                                          fx.index.value().options(),
                                          num_shards);
    EXPECT_TRUE(sharded.ok());
    queries = SampleQueries(fx.db, 6, 7, seed + 1);
    options.sigma = 2.0;
    options.compact_dead_ratio = compact_dead_ratio;
  }

  /// A fresh host over copies (the fixture keeps its own index for
  /// reference comparisons; the COW layer makes the copy cheap).
  EngineHost MakeHost() {
    return EngineHost(fx.db, sharded.value(), options);
  }
};

TEST(EngineHostTest, ServesIdenticalResultsToDirectEngine) {
  HostFixture hf(30, 77);
  EngineHost host = hf.MakeHost();
  ShardedPisEngine direct(&hf.fx.db, &hf.sharded.value(), hf.options);
  for (const Graph& q : hf.queries) {
    auto want = direct.Search(q);
    auto got = host.Search(q);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(want.value().answers, got.value().answers);
    EXPECT_EQ(want.value().candidates, got.value().candidates);
    auto got_filter = host.Filter(q);
    ASSERT_TRUE(got_filter.ok());
    EXPECT_EQ(want.value().candidates, got_filter.value().candidates);
  }
  BatchSearchResult want_batch =
      direct.SearchBatch(std::span<const Graph>(hf.queries), 2);
  BatchSearchResult got_batch =
      host.SearchBatch(std::span<const Graph>(hf.queries), 2);
  ASSERT_EQ(want_batch.results.size(), got_batch.results.size());
  for (size_t qi = 0; qi < want_batch.results.size(); ++qi) {
    ASSERT_TRUE(got_batch.results[qi].ok());
    EXPECT_EQ(want_batch.results[qi].value().answers,
              got_batch.results[qi].value().answers);
  }
}

TEST(EngineHostTest, MutationsAreVisibleExactlyWhenPublished) {
  HostFixture hf(24, 31);
  EngineHost host = hf.MakeHost();
  EXPECT_EQ(host.snapshot()->epoch, 0u);

  // Add a copy of an existing graph: it is its own sigma-0 answer, so the
  // exact query must surface the new id immediately after AddGraph returns.
  const Graph& probe = hf.fx.db.at(3);
  auto before = host.Search(probe);
  ASSERT_TRUE(before.ok());

  auto snap_before = host.snapshot();
  auto gid = host.AddGraph(probe);
  ASSERT_TRUE(gid.ok());
  EXPECT_EQ(gid.value(), hf.fx.db.size());
  EXPECT_EQ(host.snapshot()->epoch, 1u);

  auto after = host.Search(probe);
  ASSERT_TRUE(after.ok());
  std::vector<int> want = before.value().answers;
  want.push_back(gid.value());
  std::sort(want.begin(), want.end());
  std::vector<int> got = after.value().answers;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(want, got);

  // Snapshot isolation: the pre-add snapshot still answers the old state.
  auto old_result = snap_before->engine.Search(probe);
  ASSERT_TRUE(old_result.ok());
  EXPECT_EQ(old_result.value().answers, before.value().answers);
  EXPECT_EQ(snap_before->epoch, 0u);

  // Remove it again: gone from new snapshots, still present in the old one
  // taken between add and remove.
  auto snap_mid = host.snapshot();
  ASSERT_TRUE(host.RemoveGraph(gid.value()).ok());
  EXPECT_EQ(host.snapshot()->epoch, 2u);
  auto final_result = host.Search(probe);
  ASSERT_TRUE(final_result.ok());
  EXPECT_EQ(final_result.value().answers, before.value().answers);
  auto mid_result = snap_mid->engine.Search(probe);
  ASSERT_TRUE(mid_result.ok());
  EXPECT_EQ(mid_result.value().answers, got);
}

TEST(EngineHostTest, CowShardHandlesStayFrozenAcrossMutation) {
  HostFixture hf(18, 13);
  ShardedFragmentIndex index = std::move(hf.sharded.value());
  const int victim = 0;
  const int shard = index.shard_of(victim);
  std::shared_ptr<const FragmentIndex> handle = index.shard_handle(shard);
  const int live_before = handle->num_live();

  ASSERT_TRUE(index.RemoveGraph(victim).ok());
  // The mutation detached a copy: the pinned handle still sees the old
  // state while the index moved on.
  EXPECT_EQ(handle->num_live(), live_before);
  EXPECT_EQ(index.shard(shard).num_live(), live_before - 1);
  EXPECT_NE(handle.get(), &index.shard(shard));

  // Unpinned shards are mutated in place on the next write (no gratuitous
  // copies once the handle is dropped).
  handle.reset();
  const FragmentIndex* raw = &index.shard(shard);
  ASSERT_TRUE(index.CompactShard(shard).ok());
  EXPECT_EQ(raw, &index.shard(shard));
}

TEST(EngineHostTest, IndexCopiesShareShardsUntilMutation) {
  HostFixture hf(18, 19);
  ShardedFragmentIndex original = std::move(hf.sharded.value());
  ShardedFragmentIndex copy = original;
  for (int s = 0; s < original.num_shards(); ++s) {
    EXPECT_EQ(original.shard_handle(s).get(), copy.shard_handle(s).get());
  }
  // Mutating the copy detaches only the touched shard.
  const int victim = original.db_size() - 1;
  const int shard = original.shard_of(victim);
  ASSERT_TRUE(copy.RemoveGraph(victim).ok());
  for (int s = 0; s < original.num_shards(); ++s) {
    if (s == shard) {
      EXPECT_NE(original.shard_handle(s).get(), copy.shard_handle(s).get());
    } else {
      EXPECT_EQ(original.shard_handle(s).get(), copy.shard_handle(s).get());
    }
  }
  EXPECT_TRUE(original.IsLive(victim));
  EXPECT_FALSE(copy.IsLive(victim));
}

TEST(EngineHostTest, BackgroundCompactionReclaimsWithoutChangingAnswers) {
  HostFixture hf(30, 53, /*num_shards=*/3, /*compact_dead_ratio=*/0.2);
  EngineHost host = hf.MakeHost();
  EXPECT_EQ(host.compact_dead_ratio(), 0.2);

  // Tombstone a third of the database; with the policy at 0.2 every shard
  // crosses the threshold. RemoveGraph must NOT compact inline on the host
  // (the policy runs in the background), so dead counts pile up first.
  for (int gid = 0; gid < 10; ++gid) {
    ASSERT_TRUE(host.RemoveGraph(gid).ok());
  }
  EngineHost::HostStats dirty = host.Stats();
  EXPECT_EQ(dirty.removed, 10);
  EXPECT_EQ(dirty.compaction_epoch, 0);

  std::vector<std::vector<int>> want;
  for (const Graph& q : hf.queries) {
    auto r = host.Search(q);
    ASSERT_TRUE(r.ok());
    want.push_back(r.value().answers);
  }

  ASSERT_TRUE(
      host.StartAutoCompaction(std::chrono::milliseconds(5)).ok());
  EXPECT_TRUE(host.auto_compaction_running());
  EXPECT_FALSE(host.StartAutoCompaction(std::chrono::milliseconds(5)).ok());
  // The first pass runs immediately; give it a generous grace period.
  for (int tries = 0; host.background_compactions() == 0 && tries < 500;
       ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  host.StopAutoCompaction();
  EXPECT_FALSE(host.auto_compaction_running());
  ASSERT_GT(host.background_compactions(), 0u);

  EngineHost::HostStats clean = host.Stats();
  EXPECT_GT(clean.compaction_epoch, 0);
  EXPECT_EQ(clean.live, dirty.live);
  EXPECT_EQ(clean.removed, 10);  // ids stay dead forever
  for (const EngineHost::ShardInfo& s : clean.shards) {
    EXPECT_EQ(s.dead, 0) << "a shard kept dead postings past compaction";
  }
  for (size_t qi = 0; qi < hf.queries.size(); ++qi) {
    auto r = host.Search(hf.queries[qi]);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().answers, want[qi]) << "query " << qi;
  }
}

TEST(EngineHostTest, StatsJsonIsMachineReadable) {
  HostFixture hf(20, 91);
  EngineHost host = hf.MakeHost();
  ASSERT_TRUE(host.RemoveGraph(1).ok());
  EngineHost::HostStats stats = host.Stats();
  auto parsed = JsonValue::Parse(stats.ToJson());
  ASSERT_TRUE(parsed.ok()) << stats.ToJson();
  EXPECT_EQ(parsed.value().GetNumberOr("live", -1), stats.live);
  EXPECT_EQ(parsed.value().GetNumberOr("removed", -1), 1);
  EXPECT_EQ(parsed.value().GetNumberOr("epoch", -1), 1);
  // Durability / group-commit counters are always present (zero without a
  // WAL — no field appearing and disappearing on dashboards).
  EXPECT_EQ(parsed.value().GetNumberOr("wal_bytes", -1), 0);
  EXPECT_EQ(parsed.value().GetNumberOr("wal_records", -1), 0);
  EXPECT_EQ(parsed.value().GetNumberOr("checkpoints", -1), 0);
  EXPECT_EQ(parsed.value().GetNumberOr("group_commit_batches", -1), 1);
  EXPECT_EQ(parsed.value().GetNumberOr("group_commit_ops", -1), 1);
  EXPECT_EQ(parsed.value().GetNumberOr("group_commit_batch_size", -1), 1);
  const JsonValue* shards = parsed.value().Find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(static_cast<int>(shards->size()), stats.num_shards);
  EXPECT_GE(shards->at(0).GetNumberOr("live", -1), 0);
}

TEST(EngineHostTest, SavePersistsPolicyAndAlignedState) {
  HostFixture hf(24, 47, /*num_shards=*/3, /*compact_dead_ratio=*/0.35);
  EngineHost host = hf.MakeHost();
  ASSERT_TRUE(host.AddGraph(hf.fx.db.at(0)).ok());
  ASSERT_TRUE(host.RemoveGraph(2).ok());

  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "pis_host_save").string();
  const std::string db_path =
      (std::filesystem::path(::testing::TempDir()) / "pis_host_save_db.txt")
          .string();
  ASSERT_TRUE(host.Save(dir, db_path).ok());

  auto reloaded = ShardedFragmentIndex::LoadDir(dir);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  // The v4 manifest carries the policy even though the host zeroes it on
  // the live index (background-compactor ownership).
  EXPECT_EQ(reloaded.value().compact_dead_ratio(), 0.35);

  auto db = ReadGraphDatabaseFile(db_path);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db.value().size(), reloaded.value().db_size());
  EngineHost resumed(std::move(db.value()), reloaded.MoveValue(), hf.options);
  for (const Graph& q : hf.queries) {
    auto want = host.Search(q);
    auto got = resumed.Search(q);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(want.value().answers, got.value().answers);
  }
  std::filesystem::remove_all(dir);
  std::filesystem::remove(db_path);
}

}  // namespace
}  // namespace pis
