// The differential update harness: any seeded interleaving of AddGraph /
// RemoveGraph / Search against the incrementally maintained indexes —
// sharded ({1, 3, 8} shards) and unsharded — must produce answers,
// candidates, and filter counters identical to an index rebuilt from
// scratch over the live graphs after every single step, and again after a
// persistence round trip. This is the checkable form of the incremental
// subsystem's contract: updates never change query semantics. The shared
// driver lives in engine_test_util.h (LifecycleHarness); the suites in
// compaction_test.cc extend the same schedule with compaction and
// rebalancing steps.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "engine_test_util.h"
#include "graph/generator.h"
#include "index/sharded_index.h"
#include "mining/gspan.h"

namespace pis {
namespace {

using ::pis::testing::LifecycleHarness;

// (num_shards, seed).
class UpdateEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(UpdateEquivalenceTest, EveryStepMatchesFromScratchRebuild) {
  LifecycleHarness::Options opt;
  opt.num_shards = std::get<0>(GetParam());
  opt.seed = std::get<1>(GetParam());
  LifecycleHarness h(opt);
  if (::testing::Test::HasFatalFailure()) return;

  h.CheckAgainstRebuild();
  constexpr int kSteps = 10;
  for (int step = 0; step < kSteps; ++step) {
    const bool do_add =
        h.CanAdd() &&
        (h.live_count() <= 2 || h.rng().UniformInt(0, 1) == 0);
    if (do_add) {
      h.AddOne();
    } else {
      h.RemoveOne();
    }
    if (::testing::Test::HasFatalFailure()) return;
    h.CheckAgainstRebuild();
    if (::testing::Test::HasFatalFailure()) return;
  }

  // The mutated indexes must survive persistence: directory round trip for
  // the sharded index (manifest routing + per-shard tombstones), stream
  // round trip for the flat one — then pass the same differential check.
  h.SaveLoadRoundTrip("update_eq");
  if (::testing::Test::HasFatalFailure()) return;
  h.CheckAgainstRebuild();
}

INSTANTIATE_TEST_SUITE_P(ShardsBySeeds, UpdateEquivalenceTest,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(0, 1)));

// Routing sanity: adds go to the least-loaded shard, so after many adds the
// per-shard live counts stay balanced within one graph.
TEST(ShardedUpdateTest, AddsBalanceAcrossShards) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 90;
  MoleculeGenerator gen(gopt);
  GraphDatabase pool = gen.Generate(30);
  GraphDatabase slots;
  for (int i = 0; i < 9; ++i) slots.Add(pool.at(i));
  GraphDatabase skeletons;
  for (const Graph& g : slots.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support = 2;
  mine.max_edges = 3;
  auto patterns = MineFrequentSubgraphs(skeletons, mine);
  ASSERT_TRUE(patterns.ok());
  std::vector<Graph> features;
  for (const Pattern& p : patterns.value()) features.push_back(p.graph);
  FragmentIndexOptions iopt;
  iopt.max_fragment_edges = 3;
  auto sharded = ShardedFragmentIndex::Build(slots, features, iopt, 3);
  ASSERT_TRUE(sharded.ok());
  for (int i = 9; i < 30; ++i) {
    ASSERT_TRUE(sharded.value().AddGraph(pool.at(i)).ok());
  }
  int lo = sharded.value().shard(0).num_live();
  int hi = lo;
  for (int s = 1; s < 3; ++s) {
    lo = std::min(lo, sharded.value().shard(s).num_live());
    hi = std::max(hi, sharded.value().shard(s).num_live());
  }
  EXPECT_LE(hi - lo, 1);
  EXPECT_EQ(sharded.value().db_size(), 30);
}

}  // namespace
}  // namespace pis
