// The differential update harness: any seeded interleaving of AddGraph /
// RemoveGraph / Search against the incrementally maintained indexes —
// sharded ({1, 3, 8} shards) and unsharded — must produce answers,
// candidates, and filter counters identical to an index rebuilt from
// scratch over the live graphs after every single step, and again after a
// persistence round trip. This is the checkable form of the incremental
// subsystem's contract: updates never change query semantics.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/pis.h"
#include "core/sharded_pis.h"
#include "graph/generator.h"
#include "graph/query_sampler.h"
#include "index/fragment_index.h"
#include "index/sharded_index.h"
#include "mining/gspan.h"
#include "util/random.h"

namespace pis {
namespace {

std::vector<Graph> MineInitialFeatures(const GraphDatabase& db, int max_edges) {
  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support = 2;
  mine.max_edges = max_edges;
  auto patterns = MineFrequentSubgraphs(skeletons, mine);
  EXPECT_TRUE(patterns.ok());
  std::vector<Graph> features;
  for (const Pattern& p : patterns.value()) features.push_back(p.graph);
  return features;
}

// Maps the compact ids a from-scratch rebuild reports back to global ids.
std::vector<int> ToGlobal(const std::vector<int>& compact,
                          const std::vector<int>& live_ids) {
  std::vector<int> global;
  global.reserve(compact.size());
  for (int cid : compact) global.push_back(live_ids[cid]);
  return global;
}

// (num_shards, seed).
class UpdateEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(UpdateEquivalenceTest, EveryStepMatchesFromScratchRebuild) {
  const int num_shards = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  constexpr int kInitial = 12;
  constexpr int kPool = 26;
  constexpr int kSteps = 10;

  MoleculeGeneratorOptions gopt;
  gopt.seed = 500 + seed;
  gopt.mean_vertices = 12;
  gopt.max_vertices = 26;
  MoleculeGenerator gen(gopt);
  GraphDatabase pool = gen.Generate(kPool);

  // `slots` is the id-aligned database both incremental indexes cover;
  // removed ids keep their slot (ids are never reused).
  GraphDatabase slots;
  for (int i = 0; i < kInitial; ++i) slots.Add(pool.at(i));
  const std::vector<Graph> features = MineInitialFeatures(slots, 4);
  ASSERT_FALSE(features.empty());

  FragmentIndexOptions iopt;
  iopt.max_fragment_edges = 4;
  auto sharded = ShardedFragmentIndex::Build(slots, features, iopt, num_shards);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  auto flat = FragmentIndex::Build(slots, features, iopt);
  ASSERT_TRUE(flat.ok());

  std::vector<char> live(kInitial, 1);
  int live_count = kInitial;
  int next_pool = kInitial;
  Rng rng(700 + 13 * seed + num_shards);
  QuerySampler sampler(&pool, {.seed = 40u + seed, .strip_vertex_labels = true});
  PisOptions popt;
  popt.sigma = 2.0;

  // Rebuilds a reference index over only the live graphs and checks that
  // both incremental engines agree with it query for query: answers,
  // candidates (mapped back to global ids), and every partition-derived
  // counter. range_queries is per physical index: the flat engine must
  // match the reference exactly; the sharded engine issues one per shard.
  auto check_against_rebuild = [&]() {
    std::vector<int> live_ids;
    GraphDatabase ref_db;
    for (int gid = 0; gid < slots.size(); ++gid) {
      if (!live[gid]) continue;
      live_ids.push_back(gid);
      ref_db.Add(slots.at(gid));
    }
    ASSERT_EQ(static_cast<int>(live_ids.size()), live_count);
    ASSERT_EQ(sharded.value().num_live(), live_count);
    ASSERT_EQ(flat.value().num_live(), live_count);
    auto ref_index = FragmentIndex::Build(ref_db, features, iopt);
    ASSERT_TRUE(ref_index.ok());
    PisEngine ref_engine(&ref_db, &ref_index.value(), popt);
    ShardedPisEngine sharded_engine(&slots, &sharded.value(), popt);
    PisEngine flat_engine(&slots, &flat.value(), popt);

    for (int trial = 0; trial < 2; ++trial) {
      auto query = sampler.Sample(5 + rng.UniformInt(0, 3));
      ASSERT_TRUE(query.ok());
      auto want = ref_engine.Search(query.value());
      auto got_sharded = sharded_engine.Search(query.value());
      auto got_flat = flat_engine.Search(query.value());
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got_sharded.ok()) << got_sharded.status().ToString();
      ASSERT_TRUE(got_flat.ok()) << got_flat.status().ToString();

      const std::vector<int> want_answers =
          ToGlobal(want.value().answers, live_ids);
      const std::vector<int> want_candidates =
          ToGlobal(want.value().candidates, live_ids);
      EXPECT_EQ(want_answers, got_sharded.value().answers);
      EXPECT_EQ(want_answers, got_flat.value().answers);
      EXPECT_EQ(want_candidates, got_sharded.value().candidates);
      EXPECT_EQ(want_candidates, got_flat.value().candidates);

      const QueryStats& w = want.value().stats;
      for (const QueryStats* g :
           {&got_sharded.value().stats, &got_flat.value().stats}) {
        EXPECT_EQ(w.fragments_enumerated, g->fragments_enumerated);
        EXPECT_EQ(w.fragments_kept, g->fragments_kept);
        EXPECT_EQ(w.partition_size, g->partition_size);
        EXPECT_DOUBLE_EQ(w.partition_weight, g->partition_weight);
        EXPECT_EQ(w.candidates_after_intersection,
                  g->candidates_after_intersection);
        EXPECT_EQ(w.candidates_final, g->candidates_final);
        EXPECT_EQ(w.answers, g->answers);
      }
      EXPECT_EQ(w.range_queries, got_flat.value().stats.range_queries);
      EXPECT_EQ(w.range_queries * static_cast<size_t>(num_shards),
                got_sharded.value().stats.range_queries);
    }
  };

  check_against_rebuild();
  for (int step = 0; step < kSteps; ++step) {
    const bool can_add = next_pool < kPool;
    const bool do_add =
        can_add && (live_count <= 2 || rng.UniformInt(0, 1) == 0);
    if (do_add) {
      const Graph& g = pool.at(next_pool++);
      auto gid_sharded = sharded.value().AddGraph(g);
      auto gid_flat = flat.value().AddGraph(g);
      ASSERT_TRUE(gid_sharded.ok()) << gid_sharded.status().ToString();
      ASSERT_TRUE(gid_flat.ok());
      EXPECT_EQ(gid_sharded.value(), slots.size());
      EXPECT_EQ(gid_flat.value(), slots.size());
      slots.Add(g);
      live.push_back(1);
      ++live_count;
    } else {
      int victim = rng.UniformInt(0, live_count - 1);
      int gid = -1;
      for (int i = 0; i < slots.size(); ++i) {
        if (live[i] && victim-- == 0) {
          gid = i;
          break;
        }
      }
      ASSERT_GE(gid, 0);
      ASSERT_TRUE(sharded.value().RemoveGraph(gid).ok());
      ASSERT_TRUE(flat.value().RemoveGraph(gid).ok());
      live[gid] = 0;
      --live_count;
    }
    check_against_rebuild();
    if (::testing::Test::HasFatalFailure()) return;
  }

  // The mutated indexes must survive persistence: directory round trip for
  // the sharded index (manifest v2 routing + per-shard tombstones), stream
  // round trip for the flat one — then pass the same differential check.
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) /
       ("pis_update_rt_" + std::to_string(num_shards) + "_" +
        std::to_string(seed)))
          .string();
  ASSERT_TRUE(sharded.value().SaveDir(dir).ok());
  auto reloaded = ShardedFragmentIndex::LoadDir(dir);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value().db_size(), sharded.value().db_size());
  EXPECT_EQ(reloaded.value().num_live(), sharded.value().num_live());
  sharded = reloaded.MoveValue();

  std::stringstream buffer;
  ASSERT_TRUE(flat.value().Save(buffer).ok());
  auto reloaded_flat = FragmentIndex::Load(buffer);
  ASSERT_TRUE(reloaded_flat.ok()) << reloaded_flat.status().ToString();
  flat = reloaded_flat.MoveValue();

  check_against_rebuild();
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(ShardsBySeeds, UpdateEquivalenceTest,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(0, 1)));

// Routing sanity: adds go to the least-loaded shard, so after many adds the
// per-shard live counts stay balanced within one graph.
TEST(ShardedUpdateTest, AddsBalanceAcrossShards) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 90;
  MoleculeGenerator gen(gopt);
  GraphDatabase pool = gen.Generate(30);
  GraphDatabase slots;
  for (int i = 0; i < 9; ++i) slots.Add(pool.at(i));
  const std::vector<Graph> features = MineInitialFeatures(slots, 3);
  FragmentIndexOptions iopt;
  iopt.max_fragment_edges = 3;
  auto sharded = ShardedFragmentIndex::Build(slots, features, iopt, 3);
  ASSERT_TRUE(sharded.ok());
  for (int i = 9; i < 30; ++i) {
    ASSERT_TRUE(sharded.value().AddGraph(pool.at(i)).ok());
  }
  int lo = sharded.value().shard(0).num_live();
  int hi = lo;
  for (int s = 1; s < 3; ++s) {
    lo = std::min(lo, sharded.value().shard(s).num_live());
    hi = std::max(hi, sharded.value().shard(s).num_live());
  }
  EXPECT_LE(hi - lo, 1);
  EXPECT_EQ(sharded.value().db_size(), 30);
}

}  // namespace
}  // namespace pis
