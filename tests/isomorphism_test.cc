#include "isomorphism/vf2.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generator.h"
#include "isomorphism/cost_search.h"
#include "isomorphism/ullmann.h"
#include "util/random.h"

namespace pis {
namespace {

Graph Path(int edges, Label vlabel = 1, Label elabel = 1) {
  Graph g;
  g.AddVertex(vlabel);
  for (int i = 0; i < edges; ++i) {
    g.AddVertex(vlabel);
    EXPECT_TRUE(g.AddEdge(i, i + 1, elabel).ok());
  }
  return g;
}

Graph Cycle(int n, Label vlabel = 1, Label elabel = 1) {
  Graph g;
  for (int i = 0; i < n; ++i) g.AddVertex(vlabel);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(g.AddEdge(i, (i + 1) % n, elabel).ok());
  }
  return g;
}

TEST(Vf2Test, PathInCycle) {
  Graph p = Path(3);
  Graph c = Cycle(6);
  EXPECT_TRUE(IsSubgraph(p, c));
  EXPECT_FALSE(IsSubgraph(c, p));
}

TEST(Vf2Test, TriangleNotInTree) {
  Graph triangle = Cycle(3);
  Graph tree = Path(4);
  EXPECT_FALSE(IsSubgraph(triangle, tree));
}

TEST(Vf2Test, EmptyPatternAlwaysMatches) {
  Graph empty;
  Graph c = Cycle(4);
  EXPECT_TRUE(IsSubgraph(empty, c));
}

TEST(Vf2Test, LabelsRestrictMatching) {
  Graph p = Path(1, 1, 5);
  Graph t = Path(1, 1, 6);
  MatchOptions structural;
  EXPECT_TRUE(IsSubgraph(p, t, structural));
  MatchOptions labeled;
  labeled.match_edge_labels = true;
  EXPECT_FALSE(IsSubgraph(p, t, labeled));
  t.SetEdgeLabel(0, 5);
  EXPECT_TRUE(IsSubgraph(p, t, labeled));
}

TEST(Vf2Test, VertexLabelsRestrictMatching) {
  Graph p = Path(1, 2);
  Graph t = Path(1, 1);
  MatchOptions labeled;
  labeled.match_vertex_labels = true;
  EXPECT_FALSE(IsSubgraph(p, t, labeled));
  EXPECT_TRUE(IsSubgraph(p, t, MatchOptions{}));
}

TEST(Vf2Test, InducedRejectsExtraEdges) {
  Graph p = Path(2);        // 3 vertices, 2 edges
  Graph t = Cycle(3);       // triangle
  MatchOptions induced;
  induced.induced = true;
  EXPECT_TRUE(IsSubgraph(p, t, MatchOptions{}));  // monomorphism ok
  EXPECT_FALSE(IsSubgraph(p, t, induced));        // induced not ok
}

TEST(Vf2Test, EmbeddingCountPathInCycle) {
  // A 3-edge path embeds into a 6-cycle at 6 start points x 2 directions.
  Graph p = Path(3);
  Graph c = Cycle(6);
  Vf2Matcher matcher(p, c);
  size_t count = matcher.EnumerateAll(
      [](const std::vector<VertexId>&) { return true; });
  EXPECT_EQ(count, 12u);
}

TEST(Vf2Test, EnumerationStopsWhenCallbackReturnsFalse) {
  Graph p = Path(1);
  Graph c = Cycle(5);
  Vf2Matcher matcher(p, c);
  size_t seen = 0;
  matcher.EnumerateAll([&](const std::vector<VertexId>&) {
    ++seen;
    return seen < 3;
  });
  EXPECT_EQ(seen, 3u);
}

TEST(Vf2Test, MappingIsAValidEmbedding) {
  Graph p = Cycle(4);
  Graph t = Cycle(4);
  t.AddVertex(1);
  ASSERT_TRUE(t.AddEdge(0, 4, 1).ok());
  std::vector<VertexId> mapping;
  Vf2Matcher matcher(p, t);
  ASSERT_TRUE(matcher.FindFirst(&mapping));
  ASSERT_EQ(mapping.size(), 4u);
  std::set<VertexId> images(mapping.begin(), mapping.end());
  EXPECT_EQ(images.size(), 4u);  // injective
  for (EdgeId e = 0; e < p.NumEdges(); ++e) {
    EXPECT_TRUE(t.HasEdge(mapping[p.GetEdge(e).u], mapping[p.GetEdge(e).v]));
  }
}

TEST(IsomorphismTest, CyclesAndPaths) {
  EXPECT_TRUE(AreIsomorphic(Cycle(5), Cycle(5)));
  EXPECT_FALSE(AreIsomorphic(Cycle(5), Cycle(6)));
  EXPECT_FALSE(AreIsomorphic(Cycle(3), Path(3)));
}

TEST(AutomorphismTest, KnownGroups) {
  EXPECT_EQ(EnumerateAutomorphisms(Path(2)).size(), 2u);
  EXPECT_EQ(EnumerateAutomorphisms(Cycle(4)).size(), 8u);
  EXPECT_EQ(EnumerateAutomorphisms(Cycle(3)).size(), 6u);
  // Labels break symmetry.
  Graph labeled = Cycle(3);
  labeled.SetVertexLabel(0, 9);
  MatchOptions with_labels;
  with_labels.match_vertex_labels = true;
  EXPECT_EQ(EnumerateAutomorphisms(labeled, with_labels).size(), 2u);
}

TEST(UllmannTest, AgreesOnBasics) {
  EXPECT_TRUE(IsSubgraphUllmann(Path(3), Cycle(6)));
  EXPECT_FALSE(IsSubgraphUllmann(Cycle(3), Path(4)));
  Graph p = Path(1, 1, 5);
  Graph t = Path(1, 1, 6);
  MatchOptions labeled;
  labeled.match_edge_labels = true;
  EXPECT_FALSE(IsSubgraphUllmann(p, t, labeled));
}

TEST(UllmannTest, CountsMatchVf2) {
  Graph p = Path(2);
  Graph c = Cycle(5);
  Vf2Matcher vf2(p, c);
  UllmannMatcher ull(p, c);
  auto count_all = [](auto& m) {
    return m.EnumerateAll([](const std::vector<VertexId>&) { return true; });
  };
  EXPECT_EQ(count_all(vf2), count_all(ull));
}

// Property sweep: VF2 and Ullmann agree (existence and embedding count) on
// random pattern/target pairs, with and without labels.
class MatcherAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(MatcherAgreementTest, Vf2EqualsUllmann) {
  Rng rng(GetParam());
  RandomGraphOptions topt;
  topt.num_vertices = 8;
  topt.num_edges = 12;
  topt.vertex_alphabet = 2;
  topt.edge_alphabet = 2;
  Graph target = GenerateRandomConnectedGraph(topt, &rng);
  RandomGraphOptions popt;
  popt.num_vertices = 3 + GetParam() % 3;
  popt.num_edges = popt.num_vertices;
  popt.vertex_alphabet = 2;
  popt.edge_alphabet = 2;
  Graph pattern = GenerateRandomConnectedGraph(popt, &rng);

  for (bool vlabels : {false, true}) {
    for (bool elabels : {false, true}) {
      MatchOptions options;
      options.match_vertex_labels = vlabels;
      options.match_edge_labels = elabels;
      Vf2Matcher vf2(pattern, target, options);
      UllmannMatcher ull(pattern, target, options);
      size_t nv = vf2.EnumerateAll([](const std::vector<VertexId>&) { return true; });
      size_t nu = ull.EnumerateAll([](const std::vector<VertexId>&) { return true; });
      EXPECT_EQ(nv, nu) << "vlabels=" << vlabels << " elabels=" << elabels;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherAgreementTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace pis
