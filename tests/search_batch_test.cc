// PisEngine::SearchBatch: per-query results (answers, candidates, stats, and
// errors) must be identical to a sequential Search loop for every thread
// count, with failures isolated to their own Result slot and the aggregate
// counters consistent with the per-query ones.
#include "core/pis.h"

#include <gtest/gtest.h>

#include <vector>

#include "engine_test_util.h"
#include "util/parallel.h"

namespace pis {
namespace {

using testing::EngineFixture;
using testing::ExpectSameCounters;
using testing::SampleQueries;

void ExpectBatchMatchesSequential(const PisEngine& engine,
                                  const std::vector<Graph>& queries,
                                  int num_threads) {
  BatchSearchResult batch =
      engine.SearchBatch(std::span<const Graph>(queries), num_threads);
  ASSERT_EQ(batch.results.size(), queries.size());
  size_t expect_ok = 0;
  size_t expect_failed = 0;
  QueryStats expect_total;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    Result<SearchResult> sequential = engine.Search(queries[qi]);
    const Result<SearchResult>& batched = batch.results[qi];
    ASSERT_EQ(sequential.ok(), batched.ok())
        << "threads=" << num_threads << " query " << qi;
    if (!sequential.ok()) {
      // Error cases propagate verbatim.
      EXPECT_EQ(sequential.status(), batched.status()) << "query " << qi;
      ++expect_failed;
      continue;
    }
    EXPECT_EQ(sequential.value().answers, batched.value().answers)
        << "threads=" << num_threads << " query " << qi;
    EXPECT_EQ(sequential.value().candidates, batched.value().candidates)
        << "threads=" << num_threads << " query " << qi;
    ExpectSameCounters(sequential.value().stats, batched.value().stats);
    ++expect_ok;
    expect_total.Accumulate(sequential.value().stats);
  }
  EXPECT_EQ(batch.succeeded, expect_ok);
  EXPECT_EQ(batch.failed, expect_failed);
  ExpectSameCounters(batch.total_stats, expect_total);
  EXPECT_GE(batch.wall_seconds, 0);
}

TEST(SearchBatchTest, MatchesSequentialAcrossThreadCounts) {
  EngineFixture fx(40, 11);
  PisOptions options;
  options.sigma = 2;
  PisEngine engine(&fx.db, &fx.index.value(), options);
  std::vector<Graph> queries = SampleQueries(fx.db, 12, 8, 5);
  for (int threads : {1, 2, HardwareThreads()}) {
    ExpectBatchMatchesSequential(engine, queries, threads);
  }
}

TEST(SearchBatchTest, SixtyFourQueryBatchOnAllHardwareThreads) {
  // ISSUE acceptance criterion: a 64-query batch with HardwareThreads()
  // threads returns results equal to the sequential loop.
  EngineFixture fx(40, 23);
  PisOptions options;
  options.sigma = 2;
  PisEngine engine(&fx.db, &fx.index.value(), options);
  std::vector<Graph> queries = SampleQueries(fx.db, 64, 8, 9);
  ExpectBatchMatchesSequential(engine, queries, HardwareThreads());
}

TEST(SearchBatchTest, ErrorQueriesAreIsolatedPerSlot) {
  EngineFixture fx(30, 31);
  PisOptions options;
  options.sigma = 2;
  PisEngine engine(&fx.db, &fx.index.value(), options);
  std::vector<Graph> queries = SampleQueries(fx.db, 6, 8, 17);
  // Empty graphs are rejected by Filter; plant them among valid queries.
  queries.insert(queries.begin() + 2, Graph());
  queries.push_back(Graph());
  for (int threads : {1, 2, HardwareThreads()}) {
    BatchSearchResult batch =
        engine.SearchBatch(std::span<const Graph>(queries), threads);
    ASSERT_EQ(batch.results.size(), queries.size());
    EXPECT_EQ(batch.failed, 2u);
    EXPECT_EQ(batch.succeeded, queries.size() - 2);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const bool should_fail = qi == 2 || qi == queries.size() - 1;
      EXPECT_EQ(!batch.results[qi].ok(), should_fail) << "query " << qi;
      if (should_fail) {
        EXPECT_EQ(batch.results[qi].status().code(),
                  StatusCode::kInvalidArgument);
      }
    }
    ExpectBatchMatchesSequential(engine, queries, threads);
  }
}

TEST(SearchBatchTest, EmptyBatch) {
  EngineFixture fx(20, 47);
  PisEngine engine(&fx.db, &fx.index.value(), {});
  BatchSearchResult batch = engine.SearchBatch({}, HardwareThreads());
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(batch.succeeded, 0u);
  EXPECT_EQ(batch.failed, 0u);
  ExpectSameCounters(batch.total_stats, QueryStats{});
}

TEST(SearchBatchTest, SingleQueryBatch) {
  EngineFixture fx(20, 53);
  PisOptions options;
  options.sigma = 2;
  PisEngine engine(&fx.db, &fx.index.value(), options);
  std::vector<Graph> queries = SampleQueries(fx.db, 1, 8, 3);
  for (int threads : {1, HardwareThreads()}) {
    ExpectBatchMatchesSequential(engine, queries, threads);
  }
}

TEST(SearchBatchTest, ZeroThreadsMeansAllHardwareThreads) {
  EngineFixture fx(20, 61);
  PisOptions options;
  options.sigma = 2;
  PisEngine engine(&fx.db, &fx.index.value(), options);
  std::vector<Graph> queries = SampleQueries(fx.db, 4, 8, 7);
  ExpectBatchMatchesSequential(engine, queries, 0);
}

TEST(SearchBatchTest, VerifyThreadsOptionDoesNotChangeResults) {
  // The anti-oversubscription clamp (verify_threads flattened under a wide
  // batch fan-out) must be invisible in the results.
  EngineFixture fx(30, 67);
  PisOptions options;
  options.sigma = 2;
  PisEngine plain(&fx.db, &fx.index.value(), options);
  options.verify_threads = 4;
  PisEngine nested(&fx.db, &fx.index.value(), options);
  std::vector<Graph> queries = SampleQueries(fx.db, 8, 8, 13);
  BatchSearchResult a =
      plain.SearchBatch(std::span<const Graph>(queries), HardwareThreads());
  BatchSearchResult b =
      nested.SearchBatch(std::span<const Graph>(queries), HardwareThreads());
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t qi = 0; qi < a.results.size(); ++qi) {
    ASSERT_TRUE(a.results[qi].ok());
    ASSERT_TRUE(b.results[qi].ok());
    EXPECT_EQ(a.results[qi].value().answers, b.results[qi].value().answers);
    ExpectSameCounters(a.results[qi].value().stats,
                       b.results[qi].value().stats);
  }
}

TEST(SearchBatchTest, DuplicateQueriesHitTheEnumerationCache) {
  EngineFixture fx(30, 71);
  PisOptions options;
  options.sigma = 2;
  PisEngine engine(&fx.db, &fx.index.value(), options);
  std::vector<Graph> distinct = SampleQueries(fx.db, 2, 8, 21);
  // q0 x5, q1 x2: a sequential batch must hit the memo 4 + 1 = 5 times
  // (each distinct query misses once).
  std::vector<Graph> queries(5, distinct[0]);
  queries.push_back(distinct[1]);
  queries.push_back(distinct[1]);

  BatchSearchResult batch =
      engine.SearchBatch(std::span<const Graph>(queries), /*num_threads=*/1);
  EXPECT_EQ(batch.total_stats.enum_cache_hits, 5u);
  // A hit must be invisible in everything except the hit counter.
  ExpectBatchMatchesSequential(engine, queries, 1);
  // Concurrent workers may race duplicate misses, so only the results are
  // pinned across thread counts (the hit count is schedule-dependent,
  // like the timing fields).
  for (int threads : {2, HardwareThreads()}) {
    ExpectBatchMatchesSequential(engine, queries, threads);
  }
}

TEST(SearchBatchTest, IsomorphicButRenumberedDuplicatesStayExact) {
  // The cache key combines the canonical min-DFS code with the exact
  // encoding: a renumbered twin must not inherit the original's fragment
  // list (its own enumeration orders fragments differently), so the batch
  // still equals the sequential loop exactly — while exact repeats of the
  // twin itself still hit its own entry.
  EngineFixture fx(30, 73);
  PisOptions options;
  options.sigma = 2;
  PisEngine engine(&fx.db, &fx.index.value(), options);
  std::vector<Graph> queries = SampleQueries(fx.db, 1, 8, 29);
  const Graph original = queries[0];  // copy: push_back below reallocates
  std::vector<VertexId> perm(original.NumVertices());
  for (int v = 0; v < original.NumVertices(); ++v) {
    perm[v] = (v + 1) % original.NumVertices();
  }
  const Graph twin = original.Relabeled(perm);
  queries.push_back(twin);      // isomorphic, different encoding: miss
  queries.push_back(original);  // exact duplicate of the original: hit
  queries.push_back(twin);      // exact duplicate of the twin: hit too

  BatchSearchResult batch =
      engine.SearchBatch(std::span<const Graph>(queries), /*num_threads=*/1);
  EXPECT_EQ(batch.total_stats.enum_cache_hits, 2u);
  ExpectBatchMatchesSequential(engine, queries, 1);
}

TEST(SearchBatchTest, ShardedBatchUsesTheEnumerationCacheToo) {
  EngineFixture fx(30, 79);
  auto sharded = ShardedFragmentIndex::Build(
      fx.db, fx.features, fx.index.value().options(), 3);
  ASSERT_TRUE(sharded.ok());
  PisOptions options;
  options.sigma = 2;
  ShardedPisEngine engine(&fx.db, &sharded.value(), options);
  std::vector<Graph> distinct = SampleQueries(fx.db, 2, 8, 37);
  std::vector<Graph> queries(4, distinct[0]);
  queries.push_back(distinct[1]);

  BatchSearchResult batch =
      engine.SearchBatch(std::span<const Graph>(queries), /*num_threads=*/1);
  EXPECT_EQ(batch.total_stats.enum_cache_hits, 3u);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    Result<SearchResult> sequential = engine.Search(queries[qi]);
    ASSERT_TRUE(sequential.ok());
    ASSERT_TRUE(batch.results[qi].ok());
    EXPECT_EQ(sequential.value().answers, batch.results[qi].value().answers);
    EXPECT_EQ(sequential.value().candidates,
              batch.results[qi].value().candidates);
    ExpectSameCounters(sequential.value().stats,
                       batch.results[qi].value().stats);
  }
}

}  // namespace
}  // namespace pis
