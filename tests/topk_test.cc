#include "core/topk.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "distance/superimposed.h"
#include "graph/generator.h"
#include "graph/query_sampler.h"
#include "mining/gspan.h"

namespace pis {
namespace {

struct Fixture {
  GraphDatabase db;
  Result<FragmentIndex> index = Status::Internal("unbuilt");

  explicit Fixture(uint64_t seed, int db_size = 30) {
    MoleculeGeneratorOptions gopt;
    gopt.seed = seed;
    gopt.mean_vertices = 14;
    gopt.max_vertices = 40;
    MoleculeGenerator gen(gopt);
    db = gen.Generate(db_size);
    GraphDatabase skeletons;
    for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
    GspanOptions mine;
    mine.min_support = 3;
    mine.max_edges = 4;
    auto patterns = MineFrequentSubgraphs(skeletons, mine);
    EXPECT_TRUE(patterns.ok());
    std::vector<Graph> features;
    for (const Pattern& p : patterns.value()) features.push_back(p.graph);
    FragmentIndexOptions opts;
    opts.max_fragment_edges = 4;
    index = FragmentIndex::Build(db, features, opts);
    EXPECT_TRUE(index.ok());
  }

  // Oracle: all (gid, distance) pairs, sorted.
  std::vector<std::pair<int, double>> Oracle(const Graph& query) const {
    auto model = index.value().options().spec.MakeCostModel();
    std::vector<std::pair<int, double>> all;
    for (int gid = 0; gid < db.size(); ++gid) {
      double d = MinSuperimposedDistance(query, db.at(gid), *model);
      if (d != kInfiniteDistance) all.emplace_back(gid, d);
    }
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second < b.second;
      return a.first < b.first;
    });
    return all;
  }
};

TEST(TopKTest, RejectsBadOptions) {
  Fixture fx(1);
  Graph q;
  q.AddVertex(kNoLabel);
  q.AddVertex(kNoLabel);
  ASSERT_TRUE(q.AddEdge(0, 1, 1).ok());
  TopKOptions bad;
  bad.k = 0;
  EXPECT_FALSE(TopKSearch(fx.db, fx.index.value(), q, bad).ok());
  bad.k = 1;
  bad.growth = 1.0;
  EXPECT_FALSE(TopKSearch(fx.db, fx.index.value(), q, bad).ok());
}

// Regression: these option combinations used to hang the σ-expansion loop
// (σ pinned at 0 forever) or report answers beyond max_sigma; they must be
// rejected up front instead.
TEST(TopKTest, RejectsDegenerateRadiusOptions) {
  Fixture fx(1);
  Graph q;
  q.AddVertex(kNoLabel);
  q.AddVertex(kNoLabel);
  ASSERT_TRUE(q.AddEdge(0, 1, 1).ok());

  TopKOptions spin;  // initial_sigma == 0 and first_step <= 0: infinite loop
  spin.initial_sigma = 0.0;
  spin.first_step = 0.0;
  auto r = TopKSearch(fx.db, fx.index.value(), q, spin);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  spin.first_step = -1.0;
  EXPECT_EQ(TopKSearch(fx.db, fx.index.value(), q, spin).status().code(),
            StatusCode::kInvalidArgument);

  TopKOptions negative;
  negative.initial_sigma = -0.5;
  EXPECT_EQ(TopKSearch(fx.db, fx.index.value(), q, negative).status().code(),
            StatusCode::kInvalidArgument);

  TopKOptions shrunk;  // max_sigma below the starting radius
  shrunk.initial_sigma = 2.0;
  shrunk.max_sigma = 1.0;
  EXPECT_EQ(TopKSearch(fx.db, fx.index.value(), q, shrunk).status().code(),
            StatusCode::kInvalidArgument);
}

class TopKOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(TopKOracleTest, MatchesNaiveOrdering) {
  Fixture fx(100 + GetParam());
  QuerySampler sampler(&fx.db,
                       {.seed = 50 + static_cast<uint64_t>(GetParam()),
                        .strip_vertex_labels = true});
  auto query = sampler.Sample(8);
  ASSERT_TRUE(query.ok());
  auto oracle = fx.Oracle(query.value());
  for (int k : {1, 3, 10}) {
    TopKOptions options;
    options.k = k;
    auto result = TopKSearch(fx.db, fx.index.value(), query.value(), options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    size_t expected = std::min<size_t>(k, oracle.size());
    ASSERT_EQ(result.value().results.size(), expected) << "k=" << k;
    for (size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(result.value().results[i].first, oracle[i].first)
          << "k=" << k << " rank " << i;
      EXPECT_DOUBLE_EQ(result.value().results[i].second, oracle[i].second);
    }
    // Memoization means verifications never exceed the database size per
    // distinct radius... conservatively: bounded by rounds * db size.
    EXPECT_LE(result.value().verifications,
              static_cast<size_t>(fx.db.size()) * result.value().rounds);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKOracleTest, ::testing::Range(0, 8));

TEST(TopKTest, MaxSigmaBoundsResults) {
  Fixture fx(7);
  QuerySampler sampler(&fx.db, {.seed = 9, .strip_vertex_labels = true});
  auto query = sampler.Sample(8);
  ASSERT_TRUE(query.ok());
  TopKOptions options;
  options.k = 1000;  // more than the database can provide
  options.max_sigma = 1.0;
  auto result = TopKSearch(fx.db, fx.index.value(), query.value(), options);
  ASSERT_TRUE(result.ok());
  for (const auto& [gid, d] : result.value().results) {
    EXPECT_LE(d, 1.0);
  }
  EXPECT_LE(result.value().final_sigma, 1.0);
}

TEST(TopKTest, ZeroInitialSigmaFindsExactMatchesFirst) {
  Fixture fx(13);
  QuerySampler sampler(&fx.db, {.seed = 21, .strip_vertex_labels = true});
  auto query = sampler.Sample(6);
  ASSERT_TRUE(query.ok());
  TopKOptions options;
  options.k = 1;
  options.initial_sigma = 0.0;
  auto result = TopKSearch(fx.db, fx.index.value(), query.value(), options);
  ASSERT_TRUE(result.ok());
  // The query was sampled from the database: its host matches at distance 0.
  ASSERT_EQ(result.value().results.size(), 1u);
  EXPECT_DOUBLE_EQ(result.value().results[0].second, 0.0);
  EXPECT_EQ(result.value().rounds, 1);
}

}  // namespace
}  // namespace pis
