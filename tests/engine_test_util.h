// Shared fixtures for the engine-level suites: the generate → mine → select
// → index pipeline and QueryStats comparison. Header-only; include from
// tests only.
#ifndef PIS_TESTS_ENGINE_TEST_UTIL_H_
#define PIS_TESTS_ENGINE_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/pis.h"
#include "graph/generator.h"
#include "graph/query_sampler.h"
#include "mining/feature_selector.h"
#include "mining/gspan.h"

namespace pis::testing {

/// Builds the full search stack (database, features, fragment index) as a
/// pure function of its arguments — two instances with equal arguments are
/// equal, which the determinism suite relies on.
struct EngineFixture {
  GraphDatabase db;
  std::vector<Graph> features;
  Result<FragmentIndex> index = Status::Internal("unbuilt");

  explicit EngineFixture(int db_size, uint64_t seed,
                         int max_fragment_edges = 4,
                         DistanceSpec spec = DistanceSpec::EdgeMutation(),
                         int min_support = 0) {
    MoleculeGeneratorOptions gopt;
    gopt.seed = seed;
    gopt.mean_vertices = 16;
    gopt.max_vertices = 60;
    MoleculeGenerator gen(gopt);
    db = gen.Generate(db_size);

    GraphDatabase skeletons;
    for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
    GspanOptions mine;
    mine.min_support =
        min_support > 0 ? min_support : std::max(2, db_size / 10);
    mine.max_edges = max_fragment_edges;
    auto patterns = MineFrequentSubgraphs(skeletons, mine);
    EXPECT_TRUE(patterns.ok());
    FeatureSelectorOptions select;
    select.gamma = 1.2;
    auto selected =
        SelectDiscriminativeFeatures(patterns.value(), db_size, select);
    EXPECT_TRUE(selected.ok());
    for (size_t idx : selected.value()) {
      features.push_back(patterns.value()[idx].graph);
    }

    FragmentIndexOptions iopt;
    iopt.max_fragment_edges = max_fragment_edges;
    iopt.spec = spec;
    index = FragmentIndex::Build(db, features, iopt);
    EXPECT_TRUE(index.ok());
  }
};

/// Draws `count` connected query graphs of `num_edges` edges.
inline std::vector<Graph> SampleQueries(const GraphDatabase& db, int count,
                                        int num_edges, uint64_t seed) {
  QuerySampler sampler(&db, {.seed = seed, .strip_vertex_labels = true});
  std::vector<Graph> queries;
  for (int i = 0; i < count; ++i) {
    auto q = sampler.Sample(num_edges);
    EXPECT_TRUE(q.ok());
    queries.push_back(q.value());
  }
  return queries;
}

/// Timings legitimately differ between runs; every other field must match.
inline void ExpectSameCounters(const QueryStats& a, const QueryStats& b) {
  EXPECT_EQ(a.fragments_enumerated, b.fragments_enumerated);
  EXPECT_EQ(a.fragments_kept, b.fragments_kept);
  EXPECT_EQ(a.range_queries, b.range_queries);
  EXPECT_EQ(a.partition_size, b.partition_size);
  EXPECT_DOUBLE_EQ(a.partition_weight, b.partition_weight);
  EXPECT_EQ(a.candidates_after_intersection, b.candidates_after_intersection);
  EXPECT_EQ(a.candidates_final, b.candidates_final);
  EXPECT_EQ(a.answers, b.answers);
}

}  // namespace pis::testing

#endif  // PIS_TESTS_ENGINE_TEST_UTIL_H_
