// Shared fixtures for the engine-level suites: the generate → mine → select
// → index pipeline and QueryStats comparison. Header-only; include from
// tests only.
#ifndef PIS_TESTS_ENGINE_TEST_UTIL_H_
#define PIS_TESTS_ENGINE_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pis.h"
#include "core/sharded_pis.h"
#include "graph/generator.h"
#include "graph/query_sampler.h"
#include "index/sharded_index.h"
#include "mining/feature_selector.h"
#include "mining/gspan.h"
#include "server/cluster_engine.h"
#include "server/engine_host.h"
#include "server/pis_server.h"
#include "util/random.h"

namespace pis::testing {

/// Builds the full search stack (database, features, fragment index) as a
/// pure function of its arguments — two instances with equal arguments are
/// equal, which the determinism suite relies on.
struct EngineFixture {
  GraphDatabase db;
  std::vector<Graph> features;
  Result<FragmentIndex> index = Status::Internal("unbuilt");

  explicit EngineFixture(int db_size, uint64_t seed,
                         int max_fragment_edges = 4,
                         DistanceSpec spec = DistanceSpec::EdgeMutation(),
                         int min_support = 0) {
    MoleculeGeneratorOptions gopt;
    gopt.seed = seed;
    gopt.mean_vertices = 16;
    gopt.max_vertices = 60;
    MoleculeGenerator gen(gopt);
    db = gen.Generate(db_size);

    GraphDatabase skeletons;
    for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
    GspanOptions mine;
    mine.min_support =
        min_support > 0 ? min_support : std::max(2, db_size / 10);
    mine.max_edges = max_fragment_edges;
    auto patterns = MineFrequentSubgraphs(skeletons, mine);
    EXPECT_TRUE(patterns.ok());
    FeatureSelectorOptions select;
    select.gamma = 1.2;
    auto selected =
        SelectDiscriminativeFeatures(patterns.value(), db_size, select);
    EXPECT_TRUE(selected.ok());
    for (size_t idx : selected.value()) {
      features.push_back(patterns.value()[idx].graph);
    }

    FragmentIndexOptions iopt;
    iopt.max_fragment_edges = max_fragment_edges;
    iopt.spec = spec;
    index = FragmentIndex::Build(db, features, iopt);
    EXPECT_TRUE(index.ok());
  }
};

/// Draws `count` connected query graphs of `num_edges` edges.
inline std::vector<Graph> SampleQueries(const GraphDatabase& db, int count,
                                        int num_edges, uint64_t seed) {
  QuerySampler sampler(&db, {.seed = seed, .strip_vertex_labels = true});
  std::vector<Graph> queries;
  for (int i = 0; i < count; ++i) {
    auto q = sampler.Sample(num_edges);
    EXPECT_TRUE(q.ok());
    queries.push_back(q.value());
  }
  return queries;
}

/// Timings legitimately differ between runs; every other field must match.
/// The sketch_* counters are deliberately excluded: the sketch prefilter
/// contract is "identical results, identical shared counters" — the
/// sketch's own probe counts differ between sketch-on and sketch-off runs
/// by construction.
inline void ExpectSameCounters(const QueryStats& a, const QueryStats& b) {
  EXPECT_EQ(a.fragments_enumerated, b.fragments_enumerated);
  EXPECT_EQ(a.fragments_kept, b.fragments_kept);
  EXPECT_EQ(a.range_queries, b.range_queries);
  EXPECT_EQ(a.partition_size, b.partition_size);
  EXPECT_DOUBLE_EQ(a.partition_weight, b.partition_weight);
  EXPECT_EQ(a.candidates_after_intersection, b.candidates_after_intersection);
  EXPECT_EQ(a.candidates_final, b.candidates_final);
  EXPECT_EQ(a.answers, b.answers);
}

/// Differential index-lifecycle driver shared by the update-equivalence and
/// compaction suites. It maintains, under one randomized schedule of
/// add / remove / compact / rebalance / save-load steps:
///   - a mutable ShardedFragmentIndex over the id-aligned `slots()` database
///     (removed graphs keep their slot — global ids are stable for life),
///   - a mutable flat FragmentIndex whose ids re-densify on CompactFlat(),
///     mirrored by its own aligned database exactly the way `pis_cli
///     compact` rewrites the db file,
/// and CheckAgainstRebuild() asserts that both engines answer any query
/// identically — answers, candidates, and partition-derived counters — to a
/// from-scratch rebuild over only the live graphs. Every method is void so
/// ASSERT_* works inside; callers bail on HasFatalFailure() between steps.
class LifecycleHarness {
 public:
  struct Options {
    int num_shards = 3;
    uint64_t seed = 0;
    int initial_graphs = 12;
    int pool_graphs = 26;
    int max_fragment_edges = 4;
    double sigma = 2.0;
    int queries_per_check = 2;
  };

  explicit LifecycleHarness(const Options& opt)
      : opt_(opt),
        rng_(700 + 13 * opt.seed + static_cast<uint64_t>(opt.num_shards)) {
    Build();  // ASSERT_* needs a void function; ctor bodies return *this
  }

 private:
  void Build() {
    MoleculeGeneratorOptions gopt;
    gopt.seed = 500 + opt_.seed;
    gopt.mean_vertices = 12;
    gopt.max_vertices = 26;
    MoleculeGenerator gen(gopt);
    pool_ = gen.Generate(opt_.pool_graphs);
    for (int i = 0; i < opt_.initial_graphs; ++i) slots_.Add(pool_.at(i));
    next_pool_ = opt_.initial_graphs;

    // Features are mined once over the initial snapshot and frozen — the
    // AddGraph/Compact contract (the class catalog is fixed at Build).
    GraphDatabase skeletons;
    for (const Graph& g : slots_.graphs()) skeletons.Add(g.Skeleton());
    GspanOptions mine;
    mine.min_support = 2;
    mine.max_edges = opt_.max_fragment_edges;
    auto patterns = MineFrequentSubgraphs(skeletons, mine);
    ASSERT_TRUE(patterns.ok());
    for (const Pattern& p : patterns.value()) features_.push_back(p.graph);
    ASSERT_FALSE(features_.empty());

    iopt_.max_fragment_edges = opt_.max_fragment_edges;
    sharded_ =
        ShardedFragmentIndex::Build(slots_, features_, iopt_, opt_.num_shards);
    ASSERT_TRUE(sharded_.ok()) << sharded_.status().ToString();
    flat_ = FragmentIndex::Build(slots_, features_, iopt_);
    ASSERT_TRUE(flat_.ok());

    flat_db_ = slots_;
    live_.assign(opt_.initial_graphs, 1);
    live_count_ = opt_.initial_graphs;
    flat_globals_.resize(opt_.initial_graphs);
    flat_id_of_.resize(opt_.initial_graphs);
    for (int gid = 0; gid < opt_.initial_graphs; ++gid) {
      flat_globals_[gid] = gid;
      flat_id_of_[gid] = gid;
    }
    popt_.sigma = opt_.sigma;
    sampler_.emplace(&pool_, QuerySamplerOptions{.seed = 40u + opt_.seed,
                                                 .strip_vertex_labels = true});
  }

 public:
  bool CanAdd() const { return next_pool_ < pool_.size(); }
  int live_count() const { return live_count_; }
  int num_slots() const { return slots_.size(); }
  const GraphDatabase& slots() const { return slots_; }
  ShardedFragmentIndex& sharded() { return sharded_.value(); }
  FragmentIndex& flat() { return flat_.value(); }
  Rng& rng() { return rng_; }

  /// Indexes the next pool graph in both indexes.
  void AddOne() {
    ASSERT_TRUE(CanAdd());
    const Graph& g = pool_.at(next_pool_++);
    auto gid = sharded_.value().AddGraph(g);
    ASSERT_TRUE(gid.ok()) << gid.status().ToString();
    ASSERT_EQ(gid.value(), slots_.size());
    auto fid = flat_.value().AddGraph(g);
    ASSERT_TRUE(fid.ok());
    ASSERT_EQ(fid.value(), flat_db_.size());
    slots_.Add(g);
    flat_db_.Add(g);
    flat_globals_.push_back(gid.value());
    flat_id_of_.push_back(fid.value());
    live_.push_back(1);
    ++live_count_;
  }

  /// Removes a uniformly random live graph from both indexes.
  void RemoveOne() {
    ASSERT_GT(live_count_, 0);
    int victim = rng_.UniformInt(0, live_count_ - 1);
    int gid = -1;
    for (int i = 0; i < slots_.size(); ++i) {
      if (live_[i] && victim-- == 0) {
        gid = i;
        break;
      }
    }
    RemoveGid(gid);
  }

  /// Removes a specific live global id from both indexes (directed tests).
  void RemoveGid(int gid) {
    ASSERT_GE(gid, 0);
    ASSERT_LT(gid, slots_.size());
    ASSERT_TRUE(live_[gid]);
    ASSERT_TRUE(sharded_.value().RemoveGraph(gid).ok());
    ASSERT_TRUE(flat_.value().RemoveGraph(flat_id_of_[gid]).ok());
    live_[gid] = 0;
    --live_count_;
  }

  /// Compacts the flat index, re-densifying its ids and its aligned
  /// database through the returned remap (the pis_cli compact flow).
  void CompactFlat() {
    const std::vector<int> remap = flat_.value().Compact();
    GraphDatabase compacted;
    std::vector<int> globals;
    for (size_t fid = 0; fid < remap.size(); ++fid) {
      if (remap[fid] < 0) continue;
      ASSERT_EQ(remap[fid], compacted.size());
      compacted.Add(flat_db_.at(static_cast<int>(fid)));
      globals.push_back(flat_globals_[fid]);
    }
    flat_db_ = std::move(compacted);
    flat_globals_ = std::move(globals);
    for (int fid = 0; fid < static_cast<int>(flat_globals_.size()); ++fid) {
      flat_id_of_[flat_globals_[fid]] = fid;
    }
    ASSERT_EQ(flat_.value().db_size(), flat_db_.size());
    ASSERT_EQ(flat_.value().num_live(), live_count_);
  }

  /// Compacts sharded shards at/above the dead-ratio floor (0 = all dirty).
  void CompactSharded(double min_dead_ratio = 0.0) {
    auto compacted = sharded_.value().Compact(min_dead_ratio);
    ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  }

  void CompactShard(int s) {
    ASSERT_TRUE(sharded_.value().CompactShard(s).ok());
  }

  void CompactAll() {
    CompactSharded();
    if (::testing::Test::HasFatalFailure()) return;
    CompactFlat();
  }

  /// Rebalances the sharded index over the slot-aligned database.
  void Rebalance() {
    auto migrated = sharded_.value().Rebalance(slots_);
    ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
    int lo = sharded_.value().shard(0).num_live();
    int hi = lo;
    for (int s = 1; s < sharded_.value().num_shards(); ++s) {
      lo = std::min(lo, sharded_.value().shard(s).num_live());
      hi = std::max(hi, sharded_.value().shard(s).num_live());
    }
    EXPECT_LE(hi - lo, 1) << "rebalance left shards unbalanced";
  }

  /// Round-trips both indexes through persistence (directory manifest for
  /// the sharded one, stream for the flat one) and swaps in the reloads.
  void SaveLoadRoundTrip(const std::string& tag) {
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) /
         ("pis_lifecycle_" + tag + "_" + std::to_string(opt_.num_shards) +
          "_" + std::to_string(opt_.seed)))
            .string();
    ASSERT_TRUE(sharded_.value().SaveDir(dir).ok());
    auto reloaded = ShardedFragmentIndex::LoadDir(dir);
    std::filesystem::remove_all(dir);
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
    EXPECT_EQ(reloaded.value().db_size(), sharded_.value().db_size());
    EXPECT_EQ(reloaded.value().num_live(), sharded_.value().num_live());
    EXPECT_EQ(reloaded.value().compaction_epoch(),
              sharded_.value().compaction_epoch());
    sharded_ = std::move(reloaded);

    std::stringstream buffer;
    ASSERT_TRUE(flat_.value().Save(buffer).ok());
    auto reloaded_flat = FragmentIndex::Load(buffer);
    ASSERT_TRUE(reloaded_flat.ok()) << reloaded_flat.status().ToString();
    flat_ = std::move(reloaded_flat);
  }

  /// The differential oracle: rebuilds a reference index from scratch over
  /// only the live graphs and requires both incremental engines to agree
  /// with it query for query. The flat engine must also match the
  /// reference's physical range-query count; the sharded engine issues one
  /// per shard per fragment.
  void CheckAgainstRebuild() {
    std::vector<int> live_ids;
    GraphDatabase ref_db;
    for (int gid = 0; gid < slots_.size(); ++gid) {
      if (!live_[gid]) continue;
      live_ids.push_back(gid);
      ref_db.Add(slots_.at(gid));
    }
    ASSERT_EQ(static_cast<int>(live_ids.size()), live_count_);
    ASSERT_EQ(sharded_.value().num_live(), live_count_);
    ASSERT_EQ(flat_.value().num_live(), live_count_);
    auto ref_index = FragmentIndex::Build(ref_db, features_, iopt_);
    ASSERT_TRUE(ref_index.ok());
    PisEngine ref_engine(&ref_db, &ref_index.value(), popt_);
    ShardedPisEngine sharded_engine(&slots_, &sharded_.value(), popt_);
    PisEngine flat_engine(&flat_db_, &flat_.value(), popt_);

    for (int trial = 0; trial < opt_.queries_per_check; ++trial) {
      auto query = sampler_->Sample(5 + rng_.UniformInt(0, 3));
      ASSERT_TRUE(query.ok());
      auto want = ref_engine.Search(query.value());
      auto got_sharded = sharded_engine.Search(query.value());
      auto got_flat = flat_engine.Search(query.value());
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got_sharded.ok()) << got_sharded.status().ToString();
      ASSERT_TRUE(got_flat.ok()) << got_flat.status().ToString();

      EXPECT_EQ(ToGlobal(want.value().answers, live_ids),
                got_sharded.value().answers);
      EXPECT_EQ(ToGlobal(want.value().candidates, live_ids),
                got_sharded.value().candidates);
      EXPECT_EQ(ToGlobal(want.value().answers, live_ids),
                ToGlobal(got_flat.value().answers, flat_globals_));
      EXPECT_EQ(ToGlobal(want.value().candidates, live_ids),
                ToGlobal(got_flat.value().candidates, flat_globals_));

      const QueryStats& w = want.value().stats;
      for (const QueryStats* g :
           {&got_sharded.value().stats, &got_flat.value().stats}) {
        EXPECT_EQ(w.fragments_enumerated, g->fragments_enumerated);
        EXPECT_EQ(w.fragments_kept, g->fragments_kept);
        EXPECT_EQ(w.partition_size, g->partition_size);
        EXPECT_DOUBLE_EQ(w.partition_weight, g->partition_weight);
        EXPECT_EQ(w.candidates_after_intersection,
                  g->candidates_after_intersection);
        EXPECT_EQ(w.candidates_final, g->candidates_final);
        EXPECT_EQ(w.answers, g->answers);
      }
      EXPECT_EQ(w.range_queries, got_flat.value().stats.range_queries);
      EXPECT_EQ(w.range_queries *
                    static_cast<size_t>(sharded_.value().num_shards()),
                got_sharded.value().stats.range_queries);
    }
  }

  /// The sketch-soundness oracle: with the superimposed-sketch prefilter
  /// enabled, both engines must return results bit-identical to their
  /// sketch-off runs — same answers, candidates, and every shared counter
  /// (the sketch prunes only graphs the pass-1 intersection would kill
  /// anyway). Only the sketch_* probe counters may differ.
  void CheckSketchEquivalence() {
    PisOptions on_options = popt_;
    on_options.sketch_enabled = true;
    ShardedPisEngine sharded_off(&slots_, &sharded_.value(), popt_);
    ShardedPisEngine sharded_on(&slots_, &sharded_.value(), on_options);
    PisEngine flat_off(&flat_db_, &flat_.value(), popt_);
    PisEngine flat_on(&flat_db_, &flat_.value(), on_options);

    for (int trial = 0; trial < opt_.queries_per_check; ++trial) {
      auto query = sampler_->Sample(5 + rng_.UniformInt(0, 3));
      ASSERT_TRUE(query.ok());
      auto sharded_want = sharded_off.Search(query.value());
      auto sharded_got = sharded_on.Search(query.value());
      auto flat_want = flat_off.Search(query.value());
      auto flat_got = flat_on.Search(query.value());
      ASSERT_TRUE(sharded_want.ok()) << sharded_want.status().ToString();
      ASSERT_TRUE(sharded_got.ok()) << sharded_got.status().ToString();
      ASSERT_TRUE(flat_want.ok()) << flat_want.status().ToString();
      ASSERT_TRUE(flat_got.ok()) << flat_got.status().ToString();

      EXPECT_EQ(sharded_want.value().answers, sharded_got.value().answers);
      EXPECT_EQ(sharded_want.value().candidates,
                sharded_got.value().candidates);
      EXPECT_EQ(flat_want.value().answers, flat_got.value().answers);
      EXPECT_EQ(flat_want.value().candidates, flat_got.value().candidates);
      ExpectSameCounters(sharded_want.value().stats,
                         sharded_got.value().stats);
      ExpectSameCounters(flat_want.value().stats, flat_got.value().stats);

      // The off runs must not probe; the on runs must probe every graph
      // alive after tombstone seeding (when any fragment was enumerated).
      EXPECT_EQ(sharded_want.value().stats.sketch_checks, 0u);
      EXPECT_EQ(flat_want.value().stats.sketch_checks, 0u);
      if (flat_got.value().stats.fragments_enumerated > 0) {
        EXPECT_EQ(flat_got.value().stats.sketch_checks,
                  static_cast<size_t>(live_count_));
        EXPECT_EQ(sharded_got.value().stats.sketch_checks,
                  static_cast<size_t>(live_count_));
      }
      EXPECT_LE(flat_got.value().stats.sketch_pruned,
                flat_got.value().stats.sketch_checks);
      EXPECT_LE(sharded_got.value().stats.sketch_pruned,
                sharded_got.value().stats.sketch_checks);
    }
  }

  /// Maps ids of one aligned space back to global ids.
  static std::vector<int> ToGlobal(const std::vector<int>& compact,
                                   const std::vector<int>& id_map) {
    std::vector<int> global;
    global.reserve(compact.size());
    for (int cid : compact) global.push_back(id_map[cid]);
    return global;
  }

 private:
  Options opt_;
  Rng rng_;
  GraphDatabase pool_;
  GraphDatabase slots_;
  GraphDatabase flat_db_;
  std::vector<Graph> features_;
  FragmentIndexOptions iopt_;
  Result<ShardedFragmentIndex> sharded_ = Status::Internal("unbuilt");
  Result<FragmentIndex> flat_ = Status::Internal("unbuilt");
  /// Global liveness by gid; live_count_ is its popcount.
  std::vector<char> live_;
  int live_count_ = 0;
  int next_pool_ = 0;
  /// Flat-index id -> global gid and its inverse (stale for dead globals).
  std::vector<int> flat_globals_;
  std::vector<int> flat_id_of_;
  PisOptions popt_;
  std::optional<QuerySampler> sampler_;
};

/// Differential cluster driver: spins `num_groups * replicas` real
/// PisServers on loopback ephemeral ports (endpoint group g owns the
/// shards {s : s % num_groups == g}; every replica of a group serves the
/// identical shard subset), connects a ClusterEngine over the sockets, and
/// checks every answer, candidate list, and shared QueryStats counter
/// against a single-process EngineHost oracle that receives the same
/// write schedule.
///
/// Each replica runs its OWN EngineHost, rebuilt from the identical
/// initial inputs — index construction is deterministic, so the replicas
/// start bit-identical and stay converged because the router replays the
/// same explicit placements everywhere. KillServer tears a replica's
/// server down mid-stream (its host keeps its state, modelling a restart
/// over durable storage); RestartServer rebinds the same port and forces
/// one synchronous health/catch-up pass, so recovery is deterministic —
/// no health-thread cadence in the loop. Every method is void so ASSERT_*
/// works inside; callers bail on HasFatalFailure() between steps.
class ClusterHarness {
 public:
  struct Options {
    int num_shards = 3;
    /// Replicas per endpoint group (every shard gets this many replicas).
    int replicas = 1;
    /// Endpoint groups the shards are striped over (clamped to
    /// num_shards); 1 = every server owns every shard.
    int num_groups = 2;
    uint64_t seed = 0;
    int initial_graphs = 12;
    int pool_graphs = 26;
    int max_fragment_edges = 4;
    double sigma = 2.0;
    bool sketch = false;
    int queries_per_check = 2;
  };

  explicit ClusterHarness(const Options& opt)
      : opt_(opt),
        rng_(900 + 17 * opt.seed + static_cast<uint64_t>(opt.num_shards) +
             3 * static_cast<uint64_t>(opt.replicas)) {
    Build();  // ASSERT_* needs a void function; ctor bodies return *this
  }

  ~ClusterHarness() {
    cluster_.reset();  // sever client sockets before the servers stop
    for (Server& s : servers_) {
      if (s.server == nullptr) continue;
      s.server->Shutdown();
      s.server->Wait();
    }
  }

 private:
  struct Server {
    int group = 0;
    int port = 0;
    std::unique_ptr<EngineHost> host;
    std::unique_ptr<PisServer> server;
  };

  std::vector<int> OwnedShards(int group) const {
    std::vector<int> owned;
    for (int s = group; s < opt_.num_shards; s += num_groups_) {
      owned.push_back(s);
    }
    return owned;
  }

  /// Binds `s->server` on `port` (0 = ephemeral). A restart reuses the old
  /// port, which the kernel may briefly hold; retry around that window.
  void StartServer(Server* s, int port) {
    PisServerOptions sopt;
    sopt.port = port;
    sopt.shards_owned = OwnedShards(s->group);
    s->server = std::make_unique<PisServer>(s->host.get(), sopt);
    Status started = s->server->Start();
    for (int attempt = 0; !started.ok() && attempt < 100; ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      s->server = std::make_unique<PisServer>(s->host.get(), sopt);
      started = s->server->Start();
    }
    ASSERT_TRUE(started.ok()) << started.ToString();
    s->port = s->server->port();
  }

  void Build() {
    num_groups_ = std::min(opt_.num_groups, opt_.num_shards);
    ASSERT_GE(num_groups_, 1);
    ASSERT_GE(opt_.replicas, 1);

    MoleculeGeneratorOptions gopt;
    gopt.seed = 500 + opt_.seed;
    gopt.mean_vertices = 12;
    gopt.max_vertices = 26;
    MoleculeGenerator gen(gopt);
    pool_ = gen.Generate(opt_.pool_graphs);
    GraphDatabase initial;
    for (int i = 0; i < opt_.initial_graphs; ++i) initial.Add(pool_.at(i));
    next_pool_ = opt_.initial_graphs;
    live_.assign(opt_.initial_graphs, 1);
    live_count_ = opt_.initial_graphs;
    slot_count_ = opt_.initial_graphs;

    // Features are mined once and shared: the frozen class catalog every
    // replica (and the oracle) enumerates against must be identical.
    GraphDatabase skeletons;
    for (const Graph& g : initial.graphs()) skeletons.Add(g.Skeleton());
    GspanOptions mine;
    mine.min_support = 2;
    mine.max_edges = opt_.max_fragment_edges;
    auto patterns = MineFrequentSubgraphs(skeletons, mine);
    ASSERT_TRUE(patterns.ok());
    for (const Pattern& p : patterns.value()) features_.push_back(p.graph);
    ASSERT_FALSE(features_.empty());

    FragmentIndexOptions iopt;
    iopt.max_fragment_edges = opt_.max_fragment_edges;
    popt_.sigma = opt_.sigma;
    popt_.sketch_enabled = opt_.sketch;

    auto make_host = [&]() -> std::unique_ptr<EngineHost> {
      auto index = ShardedFragmentIndex::Build(initial, features_, iopt,
                                               opt_.num_shards);
      EXPECT_TRUE(index.ok()) << index.status().ToString();
      if (!index.ok()) return nullptr;
      return std::make_unique<EngineHost>(initial, index.MoveValue(), popt_);
    };
    oracle_ = make_host();
    ASSERT_NE(oracle_, nullptr);
    for (int g = 0; g < num_groups_; ++g) {
      for (int r = 0; r < opt_.replicas; ++r) {
        Server s;
        s.group = g;
        s.host = make_host();
        ASSERT_NE(s.host, nullptr);
        servers_.push_back(std::move(s));
      }
    }
    for (Server& s : servers_) {
      StartServer(&s, /*port=*/0);
      if (::testing::Test::HasFatalFailure()) return;
    }

    ClusterManifest manifest;
    manifest.shards.resize(opt_.num_shards);
    for (int shard = 0; shard < opt_.num_shards; ++shard) {
      const int g = shard % num_groups_;
      for (int r = 0; r < opt_.replicas; ++r) {
        const Server& s = servers_[g * opt_.replicas + r];
        manifest.shards[shard].replicas.push_back("127.0.0.1:" +
                                                  std::to_string(s.port));
      }
    }
    ClusterEngineOptions copt;
    copt.timeout_ms = 10000;
    // One transport failure opens a breaker; a 1ms window keeps ProbeOnce
    // (which skips unexpired breakers) deterministic without a sleep.
    copt.breaker_threshold = 1;
    copt.breaker_open_ms = 1;
    copt.health_interval_ms = 50;  // unused: the harness drives ProbeOnce
    copt.options = popt_;
    auto cluster = ClusterEngine::Connect(manifest, copt);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = cluster.MoveValue();
    ASSERT_EQ(cluster_->num_shards(), opt_.num_shards);

    sampler_.emplace(&pool_, QuerySamplerOptions{.seed = 40u + opt_.seed,
                                                 .strip_vertex_labels = true});
  }

 public:
  bool CanAdd() const { return next_pool_ < pool_.size(); }
  int live_count() const { return live_count_; }
  int num_servers() const { return static_cast<int>(servers_.size()); }
  ClusterEngine& cluster() { return *cluster_; }
  EngineHost& oracle() { return *oracle_; }
  Rng& rng() { return rng_; }

  /// Index of replica r of endpoint group g.
  int ServerIndex(int group, int replica) const {
    return group * opt_.replicas + replica;
  }

  /// Stops a replica's server mid-stream: live router connections are
  /// severed and new ones refused, so the next touch is a transport error.
  void KillServer(int i) {
    ASSERT_GE(i, 0);
    ASSERT_LT(i, num_servers());
    ASSERT_NE(servers_[i].server, nullptr) << "server " << i << " already down";
    servers_[i].server->Shutdown();
    servers_[i].server->Wait();
    servers_[i].server.reset();
  }

  /// Rebinds the replica on its old port, then forces one synchronous
  /// probe pass so the breaker closes and queued catch-up ops drain before
  /// the caller's next check.
  void RestartServer(int i) {
    ASSERT_GE(i, 0);
    ASSERT_LT(i, num_servers());
    ASSERT_EQ(servers_[i].server, nullptr) << "server " << i << " still up";
    StartServer(&servers_[i], servers_[i].port);
    if (::testing::Test::HasFatalFailure()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    cluster_->ProbeOnce();
  }

  /// Adds the next pool graph through the router and the oracle; the
  /// placements (and so the assigned gids) must agree.
  void AddOne() {
    ASSERT_TRUE(CanAdd());
    const Graph& g = pool_.at(next_pool_++);
    auto want = oracle_->AddGraph(g);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_EQ(want.value(), slot_count_);
    auto got = cluster_->AddGraph(g);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got.value(), want.value());
    ++slot_count_;
    live_.push_back(1);
    ++live_count_;
  }

  /// Removes a uniformly random live graph from both sides.
  void RemoveOne() {
    ASSERT_GT(live_count_, 0);
    int victim = rng_.UniformInt(0, live_count_ - 1);
    int gid = -1;
    for (int i = 0; i < slot_count_; ++i) {
      if (live_[i] && victim-- == 0) {
        gid = i;
        break;
      }
    }
    ASSERT_TRUE(oracle_->RemoveGraph(gid).ok());
    Status removed = cluster_->RemoveGraph(gid);
    ASSERT_TRUE(removed.ok()) << removed.ToString();
    live_[gid] = 0;
    --live_count_;
  }

  /// Compacts the oracle and every replica host (including killed ones —
  /// their durable state keeps evolving). Compaction reorganizes shard
  /// storage without moving global ids, so the router's routing table
  /// stays valid.
  void CompactAll() {
    auto compacted = oracle_->Compact(0.0);
    ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
    for (Server& s : servers_) {
      auto c = s.host->Compact(0.0);
      ASSERT_TRUE(c.ok()) << c.status().ToString();
    }
  }

  /// The differential check: sampled queries must return identical
  /// answers, candidate lists, and shared counters through the fan-out
  /// path and the single-process oracle. range_queries is included —
  /// both sides count one physical range query per shard per fragment.
  void CheckQueries() {
    for (int trial = 0; trial < opt_.queries_per_check; ++trial) {
      auto query = sampler_->Sample(5 + rng_.UniformInt(0, 3));
      ASSERT_TRUE(query.ok());
      auto want = oracle_->Search(query.value());
      auto got = cluster_->Search(query.value());
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(want.value().answers, got.value().answers);
      EXPECT_EQ(want.value().candidates, got.value().candidates);
      ExpectSameCounters(want.value().stats, got.value().stats);
      if (opt_.sketch) {
        // Per-shard sketch probes partition the live set, so the summed
        // cluster counters equal the oracle's global ones exactly.
        EXPECT_EQ(want.value().stats.sketch_checks,
                  got.value().stats.sketch_checks);
        EXPECT_EQ(want.value().stats.sketch_pruned,
                  got.value().stats.sketch_pruned);
      }
    }
  }

  /// SearchBatch parity, compared per query — only enum_cache_hits (a
  /// local batch optimization) may differ, and ExpectSameCounters skips
  /// it.
  void CheckBatch() {
    std::vector<Graph> queries;
    for (int i = 0; i < opt_.queries_per_check + 1; ++i) {
      auto q = sampler_->Sample(5 + rng_.UniformInt(0, 3));
      ASSERT_TRUE(q.ok());
      queries.push_back(q.value());
    }
      BatchSearchResult want = oracle_->SearchBatch(queries, 2);
    BatchSearchResult got = cluster_->SearchBatch(queries, 2);
    ASSERT_EQ(want.results.size(), queries.size());
    ASSERT_EQ(got.results.size(), queries.size());
    EXPECT_EQ(want.succeeded, got.succeeded);
    EXPECT_EQ(want.failed, got.failed);
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(want.results[i].ok()) << want.results[i].status().ToString();
      ASSERT_TRUE(got.results[i].ok()) << got.results[i].status().ToString();
      EXPECT_EQ(want.results[i].value().answers, got.results[i].value().answers);
      EXPECT_EQ(want.results[i].value().candidates,
                got.results[i].value().candidates);
      ExpectSameCounters(want.results[i].value().stats,
                         got.results[i].value().stats);
    }
  }

  /// A sampled query for callers that drive the cluster directly (e.g. the
  /// trace-propagation test).
  Result<Graph> SampleQuery(int edges) { return sampler_->Sample(edges); }
  /// An initial database graph (useful as a query guaranteed to answer —
  /// its distance to itself is 0).
  const Graph& initial_graph(int i) const { return pool_.at(i); }
  double sigma() const { return opt_.sigma; }

 private:
  Options opt_;
  int num_groups_ = 1;
  Rng rng_;
  GraphDatabase pool_;
  std::vector<Graph> features_;
  PisOptions popt_;
  std::unique_ptr<EngineHost> oracle_;
  std::vector<Server> servers_;
  std::unique_ptr<ClusterEngine> cluster_;
  /// Global liveness by gid; live_count_ is its popcount.
  std::vector<char> live_;
  int live_count_ = 0;
  int slot_count_ = 0;
  int next_pool_ = 0;
  std::optional<QuerySampler> sampler_;
};

}  // namespace pis::testing

#endif  // PIS_TESTS_ENGINE_TEST_UTIL_H_
