// Shared fixtures for the engine-level suites: the generate → mine → select
// → index pipeline and QueryStats comparison. Header-only; include from
// tests only.
#ifndef PIS_TESTS_ENGINE_TEST_UTIL_H_
#define PIS_TESTS_ENGINE_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/pis.h"
#include "core/sharded_pis.h"
#include "graph/generator.h"
#include "graph/query_sampler.h"
#include "index/sharded_index.h"
#include "mining/feature_selector.h"
#include "mining/gspan.h"
#include "util/random.h"

namespace pis::testing {

/// Builds the full search stack (database, features, fragment index) as a
/// pure function of its arguments — two instances with equal arguments are
/// equal, which the determinism suite relies on.
struct EngineFixture {
  GraphDatabase db;
  std::vector<Graph> features;
  Result<FragmentIndex> index = Status::Internal("unbuilt");

  explicit EngineFixture(int db_size, uint64_t seed,
                         int max_fragment_edges = 4,
                         DistanceSpec spec = DistanceSpec::EdgeMutation(),
                         int min_support = 0) {
    MoleculeGeneratorOptions gopt;
    gopt.seed = seed;
    gopt.mean_vertices = 16;
    gopt.max_vertices = 60;
    MoleculeGenerator gen(gopt);
    db = gen.Generate(db_size);

    GraphDatabase skeletons;
    for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
    GspanOptions mine;
    mine.min_support =
        min_support > 0 ? min_support : std::max(2, db_size / 10);
    mine.max_edges = max_fragment_edges;
    auto patterns = MineFrequentSubgraphs(skeletons, mine);
    EXPECT_TRUE(patterns.ok());
    FeatureSelectorOptions select;
    select.gamma = 1.2;
    auto selected =
        SelectDiscriminativeFeatures(patterns.value(), db_size, select);
    EXPECT_TRUE(selected.ok());
    for (size_t idx : selected.value()) {
      features.push_back(patterns.value()[idx].graph);
    }

    FragmentIndexOptions iopt;
    iopt.max_fragment_edges = max_fragment_edges;
    iopt.spec = spec;
    index = FragmentIndex::Build(db, features, iopt);
    EXPECT_TRUE(index.ok());
  }
};

/// Draws `count` connected query graphs of `num_edges` edges.
inline std::vector<Graph> SampleQueries(const GraphDatabase& db, int count,
                                        int num_edges, uint64_t seed) {
  QuerySampler sampler(&db, {.seed = seed, .strip_vertex_labels = true});
  std::vector<Graph> queries;
  for (int i = 0; i < count; ++i) {
    auto q = sampler.Sample(num_edges);
    EXPECT_TRUE(q.ok());
    queries.push_back(q.value());
  }
  return queries;
}

/// Timings legitimately differ between runs; every other field must match.
/// The sketch_* counters are deliberately excluded: the sketch prefilter
/// contract is "identical results, identical shared counters" — the
/// sketch's own probe counts differ between sketch-on and sketch-off runs
/// by construction.
inline void ExpectSameCounters(const QueryStats& a, const QueryStats& b) {
  EXPECT_EQ(a.fragments_enumerated, b.fragments_enumerated);
  EXPECT_EQ(a.fragments_kept, b.fragments_kept);
  EXPECT_EQ(a.range_queries, b.range_queries);
  EXPECT_EQ(a.partition_size, b.partition_size);
  EXPECT_DOUBLE_EQ(a.partition_weight, b.partition_weight);
  EXPECT_EQ(a.candidates_after_intersection, b.candidates_after_intersection);
  EXPECT_EQ(a.candidates_final, b.candidates_final);
  EXPECT_EQ(a.answers, b.answers);
}

/// Differential index-lifecycle driver shared by the update-equivalence and
/// compaction suites. It maintains, under one randomized schedule of
/// add / remove / compact / rebalance / save-load steps:
///   - a mutable ShardedFragmentIndex over the id-aligned `slots()` database
///     (removed graphs keep their slot — global ids are stable for life),
///   - a mutable flat FragmentIndex whose ids re-densify on CompactFlat(),
///     mirrored by its own aligned database exactly the way `pis_cli
///     compact` rewrites the db file,
/// and CheckAgainstRebuild() asserts that both engines answer any query
/// identically — answers, candidates, and partition-derived counters — to a
/// from-scratch rebuild over only the live graphs. Every method is void so
/// ASSERT_* works inside; callers bail on HasFatalFailure() between steps.
class LifecycleHarness {
 public:
  struct Options {
    int num_shards = 3;
    uint64_t seed = 0;
    int initial_graphs = 12;
    int pool_graphs = 26;
    int max_fragment_edges = 4;
    double sigma = 2.0;
    int queries_per_check = 2;
  };

  explicit LifecycleHarness(const Options& opt)
      : opt_(opt),
        rng_(700 + 13 * opt.seed + static_cast<uint64_t>(opt.num_shards)) {
    Build();  // ASSERT_* needs a void function; ctor bodies return *this
  }

 private:
  void Build() {
    MoleculeGeneratorOptions gopt;
    gopt.seed = 500 + opt_.seed;
    gopt.mean_vertices = 12;
    gopt.max_vertices = 26;
    MoleculeGenerator gen(gopt);
    pool_ = gen.Generate(opt_.pool_graphs);
    for (int i = 0; i < opt_.initial_graphs; ++i) slots_.Add(pool_.at(i));
    next_pool_ = opt_.initial_graphs;

    // Features are mined once over the initial snapshot and frozen — the
    // AddGraph/Compact contract (the class catalog is fixed at Build).
    GraphDatabase skeletons;
    for (const Graph& g : slots_.graphs()) skeletons.Add(g.Skeleton());
    GspanOptions mine;
    mine.min_support = 2;
    mine.max_edges = opt_.max_fragment_edges;
    auto patterns = MineFrequentSubgraphs(skeletons, mine);
    ASSERT_TRUE(patterns.ok());
    for (const Pattern& p : patterns.value()) features_.push_back(p.graph);
    ASSERT_FALSE(features_.empty());

    iopt_.max_fragment_edges = opt_.max_fragment_edges;
    sharded_ =
        ShardedFragmentIndex::Build(slots_, features_, iopt_, opt_.num_shards);
    ASSERT_TRUE(sharded_.ok()) << sharded_.status().ToString();
    flat_ = FragmentIndex::Build(slots_, features_, iopt_);
    ASSERT_TRUE(flat_.ok());

    flat_db_ = slots_;
    live_.assign(opt_.initial_graphs, 1);
    live_count_ = opt_.initial_graphs;
    flat_globals_.resize(opt_.initial_graphs);
    flat_id_of_.resize(opt_.initial_graphs);
    for (int gid = 0; gid < opt_.initial_graphs; ++gid) {
      flat_globals_[gid] = gid;
      flat_id_of_[gid] = gid;
    }
    popt_.sigma = opt_.sigma;
    sampler_.emplace(&pool_, QuerySamplerOptions{.seed = 40u + opt_.seed,
                                                 .strip_vertex_labels = true});
  }

 public:
  bool CanAdd() const { return next_pool_ < pool_.size(); }
  int live_count() const { return live_count_; }
  int num_slots() const { return slots_.size(); }
  const GraphDatabase& slots() const { return slots_; }
  ShardedFragmentIndex& sharded() { return sharded_.value(); }
  FragmentIndex& flat() { return flat_.value(); }
  Rng& rng() { return rng_; }

  /// Indexes the next pool graph in both indexes.
  void AddOne() {
    ASSERT_TRUE(CanAdd());
    const Graph& g = pool_.at(next_pool_++);
    auto gid = sharded_.value().AddGraph(g);
    ASSERT_TRUE(gid.ok()) << gid.status().ToString();
    ASSERT_EQ(gid.value(), slots_.size());
    auto fid = flat_.value().AddGraph(g);
    ASSERT_TRUE(fid.ok());
    ASSERT_EQ(fid.value(), flat_db_.size());
    slots_.Add(g);
    flat_db_.Add(g);
    flat_globals_.push_back(gid.value());
    flat_id_of_.push_back(fid.value());
    live_.push_back(1);
    ++live_count_;
  }

  /// Removes a uniformly random live graph from both indexes.
  void RemoveOne() {
    ASSERT_GT(live_count_, 0);
    int victim = rng_.UniformInt(0, live_count_ - 1);
    int gid = -1;
    for (int i = 0; i < slots_.size(); ++i) {
      if (live_[i] && victim-- == 0) {
        gid = i;
        break;
      }
    }
    RemoveGid(gid);
  }

  /// Removes a specific live global id from both indexes (directed tests).
  void RemoveGid(int gid) {
    ASSERT_GE(gid, 0);
    ASSERT_LT(gid, slots_.size());
    ASSERT_TRUE(live_[gid]);
    ASSERT_TRUE(sharded_.value().RemoveGraph(gid).ok());
    ASSERT_TRUE(flat_.value().RemoveGraph(flat_id_of_[gid]).ok());
    live_[gid] = 0;
    --live_count_;
  }

  /// Compacts the flat index, re-densifying its ids and its aligned
  /// database through the returned remap (the pis_cli compact flow).
  void CompactFlat() {
    const std::vector<int> remap = flat_.value().Compact();
    GraphDatabase compacted;
    std::vector<int> globals;
    for (size_t fid = 0; fid < remap.size(); ++fid) {
      if (remap[fid] < 0) continue;
      ASSERT_EQ(remap[fid], compacted.size());
      compacted.Add(flat_db_.at(static_cast<int>(fid)));
      globals.push_back(flat_globals_[fid]);
    }
    flat_db_ = std::move(compacted);
    flat_globals_ = std::move(globals);
    for (int fid = 0; fid < static_cast<int>(flat_globals_.size()); ++fid) {
      flat_id_of_[flat_globals_[fid]] = fid;
    }
    ASSERT_EQ(flat_.value().db_size(), flat_db_.size());
    ASSERT_EQ(flat_.value().num_live(), live_count_);
  }

  /// Compacts sharded shards at/above the dead-ratio floor (0 = all dirty).
  void CompactSharded(double min_dead_ratio = 0.0) {
    auto compacted = sharded_.value().Compact(min_dead_ratio);
    ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  }

  void CompactShard(int s) {
    ASSERT_TRUE(sharded_.value().CompactShard(s).ok());
  }

  void CompactAll() {
    CompactSharded();
    if (::testing::Test::HasFatalFailure()) return;
    CompactFlat();
  }

  /// Rebalances the sharded index over the slot-aligned database.
  void Rebalance() {
    auto migrated = sharded_.value().Rebalance(slots_);
    ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
    int lo = sharded_.value().shard(0).num_live();
    int hi = lo;
    for (int s = 1; s < sharded_.value().num_shards(); ++s) {
      lo = std::min(lo, sharded_.value().shard(s).num_live());
      hi = std::max(hi, sharded_.value().shard(s).num_live());
    }
    EXPECT_LE(hi - lo, 1) << "rebalance left shards unbalanced";
  }

  /// Round-trips both indexes through persistence (directory manifest for
  /// the sharded one, stream for the flat one) and swaps in the reloads.
  void SaveLoadRoundTrip(const std::string& tag) {
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) /
         ("pis_lifecycle_" + tag + "_" + std::to_string(opt_.num_shards) +
          "_" + std::to_string(opt_.seed)))
            .string();
    ASSERT_TRUE(sharded_.value().SaveDir(dir).ok());
    auto reloaded = ShardedFragmentIndex::LoadDir(dir);
    std::filesystem::remove_all(dir);
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
    EXPECT_EQ(reloaded.value().db_size(), sharded_.value().db_size());
    EXPECT_EQ(reloaded.value().num_live(), sharded_.value().num_live());
    EXPECT_EQ(reloaded.value().compaction_epoch(),
              sharded_.value().compaction_epoch());
    sharded_ = std::move(reloaded);

    std::stringstream buffer;
    ASSERT_TRUE(flat_.value().Save(buffer).ok());
    auto reloaded_flat = FragmentIndex::Load(buffer);
    ASSERT_TRUE(reloaded_flat.ok()) << reloaded_flat.status().ToString();
    flat_ = std::move(reloaded_flat);
  }

  /// The differential oracle: rebuilds a reference index from scratch over
  /// only the live graphs and requires both incremental engines to agree
  /// with it query for query. The flat engine must also match the
  /// reference's physical range-query count; the sharded engine issues one
  /// per shard per fragment.
  void CheckAgainstRebuild() {
    std::vector<int> live_ids;
    GraphDatabase ref_db;
    for (int gid = 0; gid < slots_.size(); ++gid) {
      if (!live_[gid]) continue;
      live_ids.push_back(gid);
      ref_db.Add(slots_.at(gid));
    }
    ASSERT_EQ(static_cast<int>(live_ids.size()), live_count_);
    ASSERT_EQ(sharded_.value().num_live(), live_count_);
    ASSERT_EQ(flat_.value().num_live(), live_count_);
    auto ref_index = FragmentIndex::Build(ref_db, features_, iopt_);
    ASSERT_TRUE(ref_index.ok());
    PisEngine ref_engine(&ref_db, &ref_index.value(), popt_);
    ShardedPisEngine sharded_engine(&slots_, &sharded_.value(), popt_);
    PisEngine flat_engine(&flat_db_, &flat_.value(), popt_);

    for (int trial = 0; trial < opt_.queries_per_check; ++trial) {
      auto query = sampler_->Sample(5 + rng_.UniformInt(0, 3));
      ASSERT_TRUE(query.ok());
      auto want = ref_engine.Search(query.value());
      auto got_sharded = sharded_engine.Search(query.value());
      auto got_flat = flat_engine.Search(query.value());
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got_sharded.ok()) << got_sharded.status().ToString();
      ASSERT_TRUE(got_flat.ok()) << got_flat.status().ToString();

      EXPECT_EQ(ToGlobal(want.value().answers, live_ids),
                got_sharded.value().answers);
      EXPECT_EQ(ToGlobal(want.value().candidates, live_ids),
                got_sharded.value().candidates);
      EXPECT_EQ(ToGlobal(want.value().answers, live_ids),
                ToGlobal(got_flat.value().answers, flat_globals_));
      EXPECT_EQ(ToGlobal(want.value().candidates, live_ids),
                ToGlobal(got_flat.value().candidates, flat_globals_));

      const QueryStats& w = want.value().stats;
      for (const QueryStats* g :
           {&got_sharded.value().stats, &got_flat.value().stats}) {
        EXPECT_EQ(w.fragments_enumerated, g->fragments_enumerated);
        EXPECT_EQ(w.fragments_kept, g->fragments_kept);
        EXPECT_EQ(w.partition_size, g->partition_size);
        EXPECT_DOUBLE_EQ(w.partition_weight, g->partition_weight);
        EXPECT_EQ(w.candidates_after_intersection,
                  g->candidates_after_intersection);
        EXPECT_EQ(w.candidates_final, g->candidates_final);
        EXPECT_EQ(w.answers, g->answers);
      }
      EXPECT_EQ(w.range_queries, got_flat.value().stats.range_queries);
      EXPECT_EQ(w.range_queries *
                    static_cast<size_t>(sharded_.value().num_shards()),
                got_sharded.value().stats.range_queries);
    }
  }

  /// The sketch-soundness oracle: with the superimposed-sketch prefilter
  /// enabled, both engines must return results bit-identical to their
  /// sketch-off runs — same answers, candidates, and every shared counter
  /// (the sketch prunes only graphs the pass-1 intersection would kill
  /// anyway). Only the sketch_* probe counters may differ.
  void CheckSketchEquivalence() {
    PisOptions on_options = popt_;
    on_options.sketch_enabled = true;
    ShardedPisEngine sharded_off(&slots_, &sharded_.value(), popt_);
    ShardedPisEngine sharded_on(&slots_, &sharded_.value(), on_options);
    PisEngine flat_off(&flat_db_, &flat_.value(), popt_);
    PisEngine flat_on(&flat_db_, &flat_.value(), on_options);

    for (int trial = 0; trial < opt_.queries_per_check; ++trial) {
      auto query = sampler_->Sample(5 + rng_.UniformInt(0, 3));
      ASSERT_TRUE(query.ok());
      auto sharded_want = sharded_off.Search(query.value());
      auto sharded_got = sharded_on.Search(query.value());
      auto flat_want = flat_off.Search(query.value());
      auto flat_got = flat_on.Search(query.value());
      ASSERT_TRUE(sharded_want.ok()) << sharded_want.status().ToString();
      ASSERT_TRUE(sharded_got.ok()) << sharded_got.status().ToString();
      ASSERT_TRUE(flat_want.ok()) << flat_want.status().ToString();
      ASSERT_TRUE(flat_got.ok()) << flat_got.status().ToString();

      EXPECT_EQ(sharded_want.value().answers, sharded_got.value().answers);
      EXPECT_EQ(sharded_want.value().candidates,
                sharded_got.value().candidates);
      EXPECT_EQ(flat_want.value().answers, flat_got.value().answers);
      EXPECT_EQ(flat_want.value().candidates, flat_got.value().candidates);
      ExpectSameCounters(sharded_want.value().stats,
                         sharded_got.value().stats);
      ExpectSameCounters(flat_want.value().stats, flat_got.value().stats);

      // The off runs must not probe; the on runs must probe every graph
      // alive after tombstone seeding (when any fragment was enumerated).
      EXPECT_EQ(sharded_want.value().stats.sketch_checks, 0u);
      EXPECT_EQ(flat_want.value().stats.sketch_checks, 0u);
      if (flat_got.value().stats.fragments_enumerated > 0) {
        EXPECT_EQ(flat_got.value().stats.sketch_checks,
                  static_cast<size_t>(live_count_));
        EXPECT_EQ(sharded_got.value().stats.sketch_checks,
                  static_cast<size_t>(live_count_));
      }
      EXPECT_LE(flat_got.value().stats.sketch_pruned,
                flat_got.value().stats.sketch_checks);
      EXPECT_LE(sharded_got.value().stats.sketch_pruned,
                sharded_got.value().stats.sketch_checks);
    }
  }

  /// Maps ids of one aligned space back to global ids.
  static std::vector<int> ToGlobal(const std::vector<int>& compact,
                                   const std::vector<int>& id_map) {
    std::vector<int> global;
    global.reserve(compact.size());
    for (int cid : compact) global.push_back(id_map[cid]);
    return global;
  }

 private:
  Options opt_;
  Rng rng_;
  GraphDatabase pool_;
  GraphDatabase slots_;
  GraphDatabase flat_db_;
  std::vector<Graph> features_;
  FragmentIndexOptions iopt_;
  Result<ShardedFragmentIndex> sharded_ = Status::Internal("unbuilt");
  Result<FragmentIndex> flat_ = Status::Internal("unbuilt");
  /// Global liveness by gid; live_count_ is its popcount.
  std::vector<char> live_;
  int live_count_ = 0;
  int next_pool_ = 0;
  /// Flat-index id -> global gid and its inverse (stale for dead globals).
  std::vector<int> flat_globals_;
  std::vector<int> flat_id_of_;
  PisOptions popt_;
  std::optional<QuerySampler> sampler_;
};

}  // namespace pis::testing

#endif  // PIS_TESTS_ENGINE_TEST_UTIL_H_
