// Incremental maintenance: AddGraph must behave exactly like a full rebuild
// with the same feature set.
#include <gtest/gtest.h>

#include <map>

#include "core/naive_search.h"
#include "core/pis.h"
#include "distance/combined.h"
#include "distance/superimposed.h"
#include "graph/generator.h"
#include "graph/query_sampler.h"
#include "index/fragment_index.h"
#include "mining/gspan.h"

namespace pis {
namespace {

std::vector<Graph> MineFeatures(const GraphDatabase& db, int max_edges) {
  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support = 2;
  mine.max_edges = max_edges;
  auto patterns = MineFrequentSubgraphs(skeletons, mine);
  EXPECT_TRUE(patterns.ok());
  std::vector<Graph> features;
  for (const Pattern& p : patterns.value()) features.push_back(p.graph);
  return features;
}

class IncrementalIndexTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalIndexTest, AddGraphEqualsRebuild) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 300 + GetParam();
  gopt.mean_vertices = 13;
  gopt.max_vertices = 30;
  MoleculeGenerator gen(gopt);
  GraphDatabase full = gen.Generate(16);

  // Features mined over the initial prefix only (the AddGraph contract).
  GraphDatabase prefix;
  for (int i = 0; i < 10; ++i) prefix.Add(full.at(i));
  std::vector<Graph> features = MineFeatures(prefix, 4);

  FragmentIndexOptions options;
  options.max_fragment_edges = 4;
  auto incremental = FragmentIndex::Build(prefix, features, options);
  ASSERT_TRUE(incremental.ok());
  for (int i = 10; i < 16; ++i) {
    auto gid = incremental.value().AddGraph(full.at(i));
    ASSERT_TRUE(gid.ok());
    EXPECT_EQ(gid.value(), i);
  }
  auto rebuilt = FragmentIndex::Build(full, features, options);
  ASSERT_TRUE(rebuilt.ok());

  EXPECT_EQ(incremental.value().db_size(), rebuilt.value().db_size());
  EXPECT_EQ(incremental.value().num_classes(), rebuilt.value().num_classes());

  // Identical range-query behaviour on sampled fragments.
  QuerySampler sampler(&full, {.seed = 9, .strip_vertex_labels = true});
  for (int trial = 0; trial < 6; ++trial) {
    auto fragment = sampler.Sample(3);
    ASSERT_TRUE(fragment.ok());
    if (!rebuilt.value().HasClass(fragment.value())) continue;
    std::map<int, double> a;
    std::map<int, double> b;
    auto collect = [](std::map<int, double>* out) {
      return [out](int gid, double d) {
        auto [it, ok] = out->emplace(gid, d);
        if (!ok) it->second = std::min(it->second, d);
      };
    };
    ASSERT_TRUE(
        incremental.value().RangeQuery(fragment.value(), 2, collect(&a)).ok());
    ASSERT_TRUE(rebuilt.value().RangeQuery(fragment.value(), 2, collect(&b)).ok());
    EXPECT_EQ(a, b) << "trial " << trial;
  }

  // End-to-end: the incrementally maintained index answers SSSD correctly.
  PisOptions pis_options;
  pis_options.sigma = 2;
  PisEngine engine(&full, &incremental.value(), pis_options);
  auto query = sampler.Sample(8);
  ASSERT_TRUE(query.ok());
  auto pis = engine.Search(query.value());
  ASSERT_TRUE(pis.ok());
  SearchResult naive =
      NaiveSearch(full, query.value(), options.spec, pis_options.sigma);
  EXPECT_EQ(pis.value().answers, naive.answers);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalIndexTest, ::testing::Range(0, 6));

TEST(CombinedModelTest, WeightsBothComponents) {
  Graph q;
  q.AddVertex(1);
  q.AddVertex(1);
  ASSERT_TRUE(q.AddEdge(0, 1, 1, 1.0).ok());
  Graph g;
  g.AddVertex(1);
  g.AddVertex(1);
  ASSERT_TRUE(g.AddEdge(0, 1, 2, 1.5).ok());  // label mutated + 0.5 longer
  CombinedCostModel model(EdgeMutationModel(), EdgeLinearModel(),
                          /*mutation_weight=*/2.0, /*linear_weight=*/4.0);
  // cost = 2*1 (label) + 4*0.5 (length) = 4.
  EXPECT_DOUBLE_EQ(MinSuperimposedDistance(q, g, model), 4.0);
}

TEST(CombinedModelTest, ReducesToComponents) {
  Graph q;
  q.AddVertex(1);
  q.AddVertex(1);
  ASSERT_TRUE(q.AddEdge(0, 1, 1, 1.0).ok());
  Graph g;
  g.AddVertex(1);
  g.AddVertex(1);
  ASSERT_TRUE(g.AddEdge(0, 1, 2, 1.5).ok());
  CombinedCostModel only_mutation(EdgeMutationModel(), EdgeLinearModel(), 1.0, 0.0);
  EXPECT_DOUBLE_EQ(MinSuperimposedDistance(q, g, only_mutation), 1.0);
  CombinedCostModel only_linear(EdgeMutationModel(), EdgeLinearModel(), 0.0, 1.0);
  EXPECT_DOUBLE_EQ(MinSuperimposedDistance(q, g, only_linear), 0.5);
}

}  // namespace
}  // namespace pis
