// Robustness fuzzing for the newline-delimited JSON protocol servers
// (pis_server and the router front end): malformed frames — truncated
// JSON, non-object payloads, invalid numbers, binary garbage, oversize
// lines, interleaved half-writes from concurrent sockets — must produce a
// clean {"ok":false,...} reply (or a documented connection drop for
// oversize frames), never a crash, a wedged worker, or a poisoned
// connection. Every test ends by proving the server still answers health
// checks on a fresh connection.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <memory>
#include <string>
#include <vector>

#include "engine_test_util.h"
#include "server/cluster_engine.h"
#include "server/engine_host.h"
#include "server/pis_server.h"
#include "server/router_server.h"
#include "util/json.h"
#include "util/random.h"
#include "util/socket.h"

namespace pis {
namespace {

/// A small but real engine host: the fuzzers must exercise the full
/// request pipeline (parse -> validate -> engine), not a stub.
std::unique_ptr<EngineHost> MakeHost(int num_shards) {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 4242;
  gopt.mean_vertices = 10;
  gopt.max_vertices = 20;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(8);

  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support = 2;
  mine.max_edges = 3;
  auto patterns = MineFrequentSubgraphs(skeletons, mine);
  EXPECT_TRUE(patterns.ok());
  std::vector<Graph> features;
  for (const Pattern& p : patterns.value()) features.push_back(p.graph);
  EXPECT_FALSE(features.empty());

  FragmentIndexOptions iopt;
  iopt.max_fragment_edges = 3;
  auto index = ShardedFragmentIndex::Build(db, features, iopt, num_shards);
  EXPECT_TRUE(index.ok());
  if (!index.ok()) return nullptr;
  PisOptions popt;
  popt.sigma = 2.0;
  return std::make_unique<EngineHost>(std::move(db), index.MoveValue(), popt);
}

Result<TcpSocket> Dial(int port) {
  return TcpSocket::Connect("127.0.0.1", port, /*timeout_ms=*/10000);
}

/// One round trip that must come back as a parsable JSON object.
Result<JsonValue> RoundTrip(TcpSocket* conn, const std::string& line) {
  PIS_RETURN_NOT_OK(conn->SendLine(line));
  PIS_ASSIGN_OR_RETURN(std::string reply, conn->RecvLine());
  return JsonValue::Parse(reply);
}

/// The connection-stays-usable probe: a valid request after garbage must
/// still succeed on the same socket.
void ExpectHealthy(TcpSocket* conn) {
  auto reply = RoundTrip(conn, R"({"op":"health"})");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply.value().GetBoolOr("ok", false))
      << reply.value().Serialize();
}

/// Malformed frames every protocol server must reject identically: a
/// clean {"ok":false,"code":...} reply with the connection left usable.
const std::vector<std::string>& MalformedFrames() {
  static const std::vector<std::string>* frames = new std::vector<std::string>{
      // Truncated / structurally invalid JSON.
      R"({"op":"quer)",
      R"({"op":"query","graph":)",
      R"({{{)",
      R"(})",
      // Valid JSON, wrong shape.
      R"([1,2,3])",
      R"("just a string")",
      R"(42)",
      R"(null)",
      R"({})",
      // Invalid numbers where strict int32 ids are required.
      R"({"op":"remove","id":3.5})",
      R"({"op":"remove","id":-1})",
      R"({"op":"remove","id":1e18})",
      R"({"op":"remove","id":"7"})",
      R"({"op":"remove"})",
      // Bad graph payloads.
      R"({"op":"query"})",
      R"({"op":"query","graph":42})",
      R"({"op":"query","graph":"not a graph record"})",
      R"({"op":"query","graph":"t # 0","sigma":"two"})",
      // Binary garbage (no newline — that is the frame delimiter).
      std::string("\x01\x02\xff\xfe{\"op\":\x00\x7f", 12),
      // Unknown ops.
      R"({"op":"nope"})",
      R"({"op":""})",
  };
  return *frames;
}

void FuzzMalformedFrames(int port, const std::vector<std::string>& extra) {
  auto conn = Dial(port);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  std::vector<std::string> frames = MalformedFrames();
  frames.insert(frames.end(), extra.begin(), extra.end());
  for (const std::string& frame : frames) {
    auto reply = RoundTrip(&conn.value(), frame);
    ASSERT_TRUE(reply.ok())
        << "no clean reply to frame: " << frame << " — "
        << reply.status().ToString();
    EXPECT_TRUE(reply.value().is_object()) << reply.value().Serialize();
    EXPECT_FALSE(reply.value().GetBoolOr("ok", true))
        << "accepted malformed frame " << frame << ": "
        << reply.value().Serialize();
    EXPECT_TRUE(reply.value().Has("code"))
        << "error reply without code: " << reply.value().Serialize();
    ExpectHealthy(&conn.value());
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ProtocolFuzzTest, ServerRejectsMalformedFramesCleanly) {
  auto host = MakeHost(2);
  ASSERT_NE(host, nullptr);
  PisServer server(host.get(), {});
  ASSERT_TRUE(server.Start().ok());
  // Cluster-fabric ops get the same treatment, including shard bounds.
  FuzzMalformedFrames(
      server.port(),
      {
          R"({"op":"shard_query","graph":"t # 0\nv 0 1\nv 1 1\ne 0 1 1"})",
          R"({"op":"shard_query","graph":"t # 0\nv 0 1\nv 1 1\ne 0 1 1","shards":[]})",
          R"({"op":"shard_query","graph":"t # 0\nv 0 1\nv 1 1\ne 0 1 1","shards":[99]})",
          R"({"op":"shard_query","graph":"t # 0\nv 0 1\nv 1 1\ne 0 1 1","shards":[0.5]})",
          R"({"op":"shard_verify","graph":"t # 0\nv 0 1\nv 1 1\ne 0 1 1","ids":[0]})",
          R"({"op":"shard_add","gid":0,"shard":0})",
          R"({"op":"shard_add","gid":-1,"shard":0,"graph":"t # 0\nv 0 1"})",
          R"({"op":"shard_remove","id":2.5})",
      });
  EXPECT_TRUE(server.running());
  server.Shutdown();
  server.Wait();
}

TEST(ProtocolFuzzTest, RouterRejectsMalformedFramesCleanly) {
  auto host = MakeHost(2);
  ASSERT_NE(host, nullptr);
  PisServer server(host.get(), {});
  ASSERT_TRUE(server.Start().ok());

  ClusterManifest manifest;
  manifest.shards.resize(2);
  const std::string endpoint = "127.0.0.1:" + std::to_string(server.port());
  manifest.shards[0].replicas.push_back(endpoint);
  manifest.shards[1].replicas.push_back(endpoint);
  ClusterEngineOptions copt;
  copt.timeout_ms = 10000;
  copt.options.sigma = 2.0;
  auto cluster = ClusterEngine::Connect(manifest, copt);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  RouterServer router(cluster.value().get(), {});
  ASSERT_TRUE(router.Start().ok());

  FuzzMalformedFrames(router.port(), {R"({"op":"add"})",
                                      R"({"op":"add","graph":17})",
                                      R"({"op":"remove","id":1e300})"});
  EXPECT_TRUE(router.running());
  EXPECT_TRUE(server.running());
  router.Shutdown();
  router.Wait();
  server.Shutdown();
  server.Wait();
}

TEST(ProtocolFuzzTest, OversizeFrameErrorsThenDropsConnection) {
  auto host = MakeHost(2);
  ASSERT_NE(host, nullptr);
  PisServerOptions sopt;
  sopt.max_request_bytes = 1024;
  PisServer server(host.get(), sopt);
  ASSERT_TRUE(server.Start().ok());

  auto conn = Dial(server.port());
  ASSERT_TRUE(conn.ok());
  auto reply = RoundTrip(&conn.value(), std::string(8 * 1024, 'x'));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply.value().GetBoolOr("ok", true));
  EXPECT_TRUE(reply.value().Has("code")) << reply.value().Serialize();

  // The connection is dropped after the error (the tail of the oversize
  // frame cannot be reframed safely); a later round trip must fail...
  auto dead = RoundTrip(&conn.value(), R"({"op":"health"})");
  EXPECT_FALSE(dead.ok());

  // ...but the server keeps serving fresh connections.
  auto fresh = Dial(server.port());
  ASSERT_TRUE(fresh.ok());
  ExpectHealthy(&fresh.value());
  EXPECT_TRUE(server.running());
  server.Shutdown();
  server.Wait();
}

TEST(ProtocolFuzzTest, InterleavedHalfWritesKeepConnectionsIndependent) {
  auto host = MakeHost(2);
  ASSERT_NE(host, nullptr);
  PisServer server(host.get(), {});
  ASSERT_TRUE(server.Start().ok());

  auto slow = Dial(server.port());
  auto fast = Dial(server.port());
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());

  // `slow` parks half a frame in the server's connection buffer...
  const std::string request = R"({"op":"health"})";
  const std::string head = request.substr(0, 7);
  const std::string tail = request.substr(7) + "\n";
  ASSERT_EQ(::send(slow.value().fd(), head.data(), head.size(), 0),
            static_cast<ssize_t>(head.size()));

  // ...which must not wedge or contaminate other connections.
  for (int i = 0; i < 3; ++i) {
    ExpectHealthy(&fast.value());
    if (::testing::Test::HasFatalFailure()) return;
  }

  // Completing the frame later yields a normal reply on `slow`.
  ASSERT_EQ(::send(slow.value().fd(), tail.data(), tail.size(), 0),
            static_cast<ssize_t>(tail.size()));
  auto reply = slow.value().RecvLine();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto parsed = JsonValue::Parse(reply.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().GetBoolOr("ok", false));

  server.Shutdown();
  server.Wait();
}

TEST(ProtocolFuzzTest, RandomGarbageNeverCrashesOrWedges) {
  auto host = MakeHost(2);
  ASSERT_NE(host, nullptr);
  PisServer server(host.get(), {});
  ASSERT_TRUE(server.Start().ok());

  Rng rng(20260808);
  // Bias toward JSON-ish punctuation so frames get deep into the parser,
  // with raw control/8-bit bytes mixed in ('\n' excluded: frame delimiter).
  const std::string alphabet =
      "{}[]\":,.0123456789eE+-truefalsnopqisd \t\\/";
  auto conn = Dial(server.port());
  ASSERT_TRUE(conn.ok());
  for (int iter = 0; iter < 200; ++iter) {
    if (iter % 50 == 49) {  // periodically start over on a fresh socket
      conn = Dial(server.port());
      ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    }
    // Length >= 1: an empty line is a protocol keep-alive (no reply).
    const int len = rng.UniformInt(1, 120);
    std::string frame;
    frame.reserve(len);
    for (int i = 0; i < len; ++i) {
      if (rng.UniformInt(0, 9) == 0) {
        char raw = static_cast<char>(rng.UniformInt(0, 255));
        frame.push_back(raw == '\n' ? '\r' : raw);
      } else {
        frame.push_back(
            alphabet[rng.UniformInt(0, static_cast<int>(alphabet.size()) - 1)]);
      }
    }
    auto reply = RoundTrip(&conn.value(), frame);
    ASSERT_TRUE(reply.ok())
        << "server stopped replying at iteration " << iter << ": "
        << reply.status().ToString();
    EXPECT_TRUE(reply.value().is_object());
  }
  ExpectHealthy(&conn.value());
  EXPECT_TRUE(server.running());
  server.Shutdown();
  server.Wait();
}

/// Blank lines are keep-alives: no reply, and the next real request on
/// the same connection is answered normally.
TEST(ProtocolFuzzTest, BlankLinesAreKeepAlives) {
  auto host = MakeHost(2);
  ASSERT_NE(host, nullptr);
  PisServer server(host.get(), {});
  ASSERT_TRUE(server.Start().ok());

  auto conn = Dial(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.value().SendLine("").ok());
  ASSERT_TRUE(conn.value().SendLine("").ok());
  ExpectHealthy(&conn.value());  // the reply is for health, not the blanks
  server.Shutdown();
  server.Wait();
}

/// A peer that connects and vanishes without a byte (or mid-frame) must
/// cost the server nothing but the connection count.
TEST(ProtocolFuzzTest, AbandonedConnectionsAreHarmless) {
  auto host = MakeHost(2);
  ASSERT_NE(host, nullptr);
  PisServerOptions sopt;
  sopt.num_workers = 2;
  PisServer server(host.get(), sopt);
  ASSERT_TRUE(server.Start().ok());

  for (int i = 0; i < 8; ++i) {
    auto conn = Dial(server.port());
    ASSERT_TRUE(conn.ok());
    if (i % 2 == 0) {
      const char byte = '{';
      ASSERT_EQ(::send(conn.value().fd(), &byte, 1, 0), 1);
    }
    // Dropped here: ~TcpSocket closes mid-frame.
  }
  auto conn = Dial(server.port());
  ASSERT_TRUE(conn.ok());
  ExpectHealthy(&conn.value());
  EXPECT_TRUE(server.running());
  server.Shutdown();
  server.Wait();
}

}  // namespace
}  // namespace pis
