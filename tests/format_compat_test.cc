// Serde format versioning: the incremental-update PR bumped the fragment
// index format to v2 (trailing tombstone section) and the shard manifest to
// v2 (explicit routing table); the compaction PR bumped both to v3 (index:
// compaction epoch + live count trailer; manifest: epoch, -1-aware routing,
// explicit local ids, per-shard live counts); the serving PR bumped the
// manifest to v4 (trailing auto-compaction policy); the sketch-prefilter
// PR bumped the index to v4 (trailing superimposed-sketch section, rebuilt
// from class postings when absent). Old fixtures must still load
// — including v2 files carrying tombstones, which must then compact
// correctly — files from the future must fail with a clear Status instead
// of garbage, and a manifest that disagrees with the files on disk (or is
// truncated mid-section) must come back as InvalidArgument — never a crash
// or DCHECK.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine_test_util.h"
#include "index/fragment_index.h"
#include "index/sharded_index.h"
#include "util/serde.h"

namespace pis {
namespace {

using ::pis::testing::EngineFixture;
using ::pis::testing::SampleQueries;

constexpr uint32_t kManifestMagic = 0x5049534D;  // mirrors sharded_index.cc

void PatchU32(std::string* bytes, size_t offset, uint32_t value) {
  ASSERT_LE(offset + 4, bytes->size());
  std::memcpy(bytes->data() + offset, &value, 4);
}

// Every index version is a strict prefix of the next, with only the
// version word rewound — Save() keeps the newer sections trailing exactly
// so these fixtures stay constructible. A v3 file is a v4 file minus the
// trailing sketch section; a v2 file additionally drops the 8-byte
// epoch+live trailer; a v1 file additionally drops the 8-byte empty
// tombstone section. If this breaks after a format change, keep the new
// section trailing or bump the version with its own compat fixture.

// Size of the v4 sketch section a current Save() appends: bits (4) +
// hashes (4) + word count (8) + db_size * words_per_graph code words.
size_t SketchSectionBytes(const FragmentIndex& index) {
  return 16 + static_cast<size_t>(index.db_size()) *
                  static_cast<size_t>(index.sketch().words_per_graph()) * 8;
}

std::string MakeV3IndexBytes(const FragmentIndex& index) {
  std::stringstream out;
  EXPECT_TRUE(index.Save(out).ok());
  std::string bytes = out.str();
  EXPECT_GT(bytes.size(), SketchSectionBytes(index));
  bytes.resize(bytes.size() - SketchSectionBytes(index));
  PatchU32(&bytes, 4, 3);
  return bytes;
}

std::string MakeV2IndexBytes(const FragmentIndex& index) {
  EXPECT_EQ(index.compaction_epoch(), 0u);
  std::string bytes = MakeV3IndexBytes(index);
  EXPECT_GE(bytes.size(), 16u);
  bytes.resize(bytes.size() - 8);
  PatchU32(&bytes, 4, 2);
  return bytes;
}

std::string MakeV1IndexBytes(const FragmentIndex& index) {
  EXPECT_TRUE(index.tombstones().empty());
  std::string bytes = MakeV2IndexBytes(index);
  bytes.resize(bytes.size() - 8);
  PatchU32(&bytes, 4, 1);
  return bytes;
}

TEST(FormatCompatTest, FragmentIndexV1FixtureLoads) {
  EngineFixture fx(12, 77);
  ASSERT_TRUE(fx.index.ok());
  std::stringstream in(MakeV1IndexBytes(fx.index.value()));
  auto loaded = FragmentIndex::Load(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().db_size(), fx.index.value().db_size());
  EXPECT_EQ(loaded.value().num_classes(), fx.index.value().num_classes());
  EXPECT_EQ(loaded.value().num_live(), loaded.value().db_size());
  EXPECT_TRUE(loaded.value().tombstones().empty());

  // The reloaded v1 index answers queries identically to the original.
  PisOptions options;
  options.sigma = 2.0;
  PisEngine before(&fx.db, &fx.index.value(), options);
  PisEngine after(&fx.db, &loaded.value(), options);
  for (const Graph& q : SampleQueries(fx.db, 3, 6, 19)) {
    auto a = before.Search(q);
    auto b = after.Search(q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().answers, b.value().answers);
    EXPECT_EQ(a.value().candidates, b.value().candidates);
  }
}

// A v2 file that carries tombstones (written before the v3 trailer
// existed) must load with its dead set intact — and then compact exactly
// like a natively written index: ids re-densified, postings dropped, and
// answers identical to a from-scratch build over the survivors.
TEST(FormatCompatTest, FragmentIndexV2WithTombstonesLoadsAndCompacts) {
  EngineFixture fx(12, 21);
  ASSERT_TRUE(fx.index.ok());
  const std::vector<int> dead = {1, 4, 9};
  for (int gid : dead) ASSERT_TRUE(fx.index.value().RemoveGraph(gid).ok());
  std::stringstream in(MakeV2IndexBytes(fx.index.value()));
  auto loaded = FragmentIndex::Load(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().compaction_epoch(), 0u);
  EXPECT_EQ(loaded.value().tombstones().size(), dead.size());
  EXPECT_EQ(loaded.value().num_live(), 9);

  const std::vector<int> remap = loaded.value().Compact();
  EXPECT_EQ(loaded.value().db_size(), 9);
  EXPECT_EQ(loaded.value().compaction_epoch(), 1u);
  EXPECT_TRUE(loaded.value().tombstones().empty());

  GraphDatabase live_db;
  std::vector<int> live_ids;
  for (int gid = 0; gid < fx.db.size(); ++gid) {
    if (remap[gid] < 0) continue;
    ASSERT_EQ(remap[gid], live_db.size());
    live_db.Add(fx.db.at(gid));
    live_ids.push_back(gid);
  }
  auto rebuilt = FragmentIndex::Build(live_db, fx.features,
                                      fx.index.value().options());
  ASSERT_TRUE(rebuilt.ok());
  PisOptions options;
  options.sigma = 2.0;
  PisEngine compacted_engine(&live_db, &loaded.value(), options);
  PisEngine rebuilt_engine(&live_db, &rebuilt.value(), options);
  for (const Graph& q : SampleQueries(fx.db, 3, 6, 23)) {
    auto a = compacted_engine.Search(q);
    auto b = rebuilt_engine.Search(q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().answers, b.value().answers);
    EXPECT_EQ(a.value().candidates, b.value().candidates);
  }
}

// v3 round trip: tombstones AND the compaction trailer survive Save/Load.
TEST(FormatCompatTest, FragmentIndexV3RoundTripsEpochAndTombstones) {
  EngineFixture fx(10, 31);
  ASSERT_TRUE(fx.index.ok());
  ASSERT_TRUE(fx.index.value().RemoveGraph(2).ok());
  fx.index.value().Compact();  // epoch 1, no tombstones
  ASSERT_TRUE(fx.index.value().RemoveGraph(5).ok());

  std::stringstream buffer;
  ASSERT_TRUE(fx.index.value().Save(buffer).ok());
  auto loaded = FragmentIndex::Load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().compaction_epoch(), 1u);
  EXPECT_EQ(loaded.value().db_size(), 9);
  EXPECT_EQ(loaded.value().num_live(), 8);
  EXPECT_EQ(loaded.value().tombstones().count(5), 1u);
}

// A v3 trailer whose live count disagrees with the tombstone section is
// corruption, not a silently wrong selectivity denominator.
TEST(FormatCompatTest, FragmentIndexV3BadLiveCountRejected) {
  EngineFixture fx(8, 41);
  ASSERT_TRUE(fx.index.ok());
  std::string bytes = MakeV3IndexBytes(fx.index.value());
  PatchU32(&bytes, bytes.size() - 4, 3);  // claim 3 live of 8, all live
  std::stringstream in(bytes);
  auto loaded = FragmentIndex::Load(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("live count"), std::string::npos);
}

// A pre-v4 file carries no sketch section; Load must rebuild the sketch
// from class postings, bit-for-bit identical to the incrementally
// maintained one — proven by the resaved sketch section matching the
// original Save() byte-for-byte, and by sketch-enabled queries answering
// identically to the original index.
TEST(FormatCompatTest, PreV4LoadRebuildsSketchBitIdentically) {
  EngineFixture fx(12, 53);
  ASSERT_TRUE(fx.index.ok());
  std::stringstream v4;
  ASSERT_TRUE(fx.index.value().Save(v4).ok());
  std::stringstream in(MakeV3IndexBytes(fx.index.value()));
  auto loaded = FragmentIndex::Load(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().sketch().bits_per_graph(),
            fx.index.value().sketch().bits_per_graph());
  EXPECT_EQ(loaded.value().sketch().num_graphs(),
            fx.index.value().sketch().num_graphs());

  std::stringstream resaved;
  ASSERT_TRUE(loaded.value().Save(resaved).ok());
  const std::string original = v4.str();
  const std::string rebuilt = resaved.str();
  const size_t section = SketchSectionBytes(fx.index.value());
  ASSERT_GE(rebuilt.size(), section);
  EXPECT_EQ(rebuilt.substr(rebuilt.size() - section),
            original.substr(original.size() - section));

  PisOptions options;
  options.sigma = 2.0;
  options.sketch_enabled = true;
  PisEngine before(&fx.db, &fx.index.value(), options);
  PisEngine after(&fx.db, &loaded.value(), options);
  for (const Graph& q : SampleQueries(fx.db, 3, 6, 29)) {
    auto a = before.Search(q);
    auto b = after.Search(q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().answers, b.value().answers);
    EXPECT_EQ(a.value().candidates, b.value().candidates);
  }
}

// v4 round trip: Save -> Load -> Save must be byte-identical — sketch code
// words are persisted verbatim, never rehashed on load.
TEST(FormatCompatTest, FragmentIndexV4SaveLoadSaveIsByteIdentical) {
  EngineFixture fx(10, 59);
  ASSERT_TRUE(fx.index.ok());
  ASSERT_TRUE(fx.index.value().RemoveGraph(3).ok());
  std::stringstream first;
  ASSERT_TRUE(fx.index.value().Save(first).ok());
  std::stringstream in(first.str());
  auto loaded = FragmentIndex::Load(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::stringstream second;
  ASSERT_TRUE(loaded.value().Save(second).ok());
  EXPECT_EQ(first.str(), second.str());
}

// A file that declares v4 but is cut off inside the sketch section parsed
// far enough to know what it promised: InvalidArgument naming the sketch,
// never a crash or a silently sketchless index.
TEST(FormatCompatTest, TruncatedV4SketchSectionIsInvalidArgument) {
  EngineFixture fx(8, 67);
  ASSERT_TRUE(fx.index.ok());
  std::stringstream out;
  ASSERT_TRUE(fx.index.value().Save(out).ok());
  std::string bytes = out.str();
  bytes.resize(bytes.size() - 8);  // lose the last code word
  std::stringstream in(bytes);
  auto loaded = FragmentIndex::Load(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("sketch"), std::string::npos);
}

TEST(FormatCompatTest, FragmentIndexFutureVersionRejected) {
  EngineFixture fx(6, 3);
  ASSERT_TRUE(fx.index.ok());
  std::stringstream out;
  ASSERT_TRUE(fx.index.value().Save(out).ok());
  std::string bytes = out.str();
  PatchU32(&bytes, 4, 99);
  std::stringstream in(bytes);
  auto loaded = FragmentIndex::Load(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

class ManifestCompatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fx_ = std::make_unique<EngineFixture>(15, 11);
    ASSERT_TRUE(fx_->index.ok());
    FragmentIndexOptions options;
    options.max_fragment_edges = 4;
    options.spec = DistanceSpec::EdgeMutation();
    auto built =
        ShardedFragmentIndex::Build(fx_->db, fx_->features, options, 3);
    ASSERT_TRUE(built.ok());
    dir_ = (std::filesystem::path(::testing::TempDir()) /
            ("pis_manifest_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    ASSERT_TRUE(built.value().SaveDir(dir_).ok());
    sharded_ = std::make_unique<ShardedFragmentIndex>(built.MoveValue());
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path ManifestPath() const {
    return std::filesystem::path(dir_) / "MANIFEST";
  }

  void WriteManifest(uint32_t version, uint32_t num_shards,
                     const std::vector<int>& payload) {
    std::ofstream out(ManifestPath(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good());
    BinaryWriter writer(out);
    writer.U32(kManifestMagic);
    writer.U32(version);
    writer.U32(num_shards);
    writer.VecInt(payload);
    ASSERT_TRUE(writer.ok());
  }

  std::unique_ptr<EngineFixture> fx_;
  std::unique_ptr<ShardedFragmentIndex> sharded_;
  std::string dir_;
};

TEST_F(ManifestCompatTest, V1ContiguousManifestLoads) {
  // Rewrite the manifest in the v1 layout (contiguous id ranges). The build
  // assigned contiguous ranges, so the offsets describe the same routing.
  std::vector<int> offsets = {0};
  for (int s = 0; s < sharded_->num_shards(); ++s) {
    offsets.push_back(offsets.back() + sharded_->shard_size(s));
  }
  WriteManifest(1, 3, offsets);
  auto loaded = ShardedFragmentIndex::LoadDir(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().db_size(), sharded_->db_size());
  for (int gid = 0; gid < sharded_->db_size(); ++gid) {
    EXPECT_EQ(loaded.value().shard_of(gid), sharded_->shard_of(gid));
  }
}

TEST_F(ManifestCompatTest, FutureManifestVersionRejected) {
  WriteManifest(42, 3, std::vector<int>(15, 0));
  auto loaded = ShardedFragmentIndex::LoadDir(dir_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST_F(ManifestCompatTest, MissingShardFileIsInvalidArgument) {
  std::filesystem::remove(std::filesystem::path(dir_) / "shard_0002.idx");
  auto loaded = ShardedFragmentIndex::LoadDir(dir_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ManifestCompatTest, SurplusShardFileIsInvalidArgument) {
  std::filesystem::copy_file(std::filesystem::path(dir_) / "shard_0000.idx",
                             std::filesystem::path(dir_) / "shard_0003.idx");
  auto loaded = ShardedFragmentIndex::LoadDir(dir_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ManifestCompatTest, RoutingToNonexistentShardIsInvalidArgument) {
  std::vector<int> routing(15, 0);
  routing[7] = 9;  // only shards 0..2 exist
  WriteManifest(2, 3, routing);
  auto loaded = ShardedFragmentIndex::LoadDir(dir_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ManifestCompatTest, RoutingDisagreeingWithShardSizesIsInvalidArgument) {
  // Structurally valid routing that sends every graph to shard 0 while the
  // files on disk hold 5 graphs each.
  WriteManifest(2, 3, std::vector<int>(15, 0));
  auto loaded = ShardedFragmentIndex::LoadDir(dir_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ManifestCompatTest, InPlaceResaveWithFewerShardsRemovesStaleFiles) {
  // Rebuilding into the same directory with a smaller shard count must not
  // strand shard files the new manifest doesn't cover — LoadDir would
  // (correctly) reject the directory as inconsistent.
  FragmentIndexOptions options;
  options.max_fragment_edges = 4;
  options.spec = DistanceSpec::EdgeMutation();
  auto smaller = ShardedFragmentIndex::Build(fx_->db, fx_->features, options, 2);
  ASSERT_TRUE(smaller.ok());
  ASSERT_TRUE(smaller.value().SaveDir(dir_).ok());
  EXPECT_FALSE(
      std::filesystem::exists(std::filesystem::path(dir_) / "shard_0002.idx"));
  auto loaded = ShardedFragmentIndex::LoadDir(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_shards(), 2);
}

// SaveDir writes a v4 manifest; compaction state must round-trip through
// it: epoch, -1 routing for compacted-away ids, per-shard live counts.
TEST_F(ManifestCompatTest, ManifestRoundTripsCompactionState) {
  ASSERT_TRUE(sharded_->RemoveGraph(3).ok());
  ASSERT_TRUE(sharded_->RemoveGraph(11).ok());
  ASSERT_TRUE(sharded_->Compact().ok());
  EXPECT_EQ(sharded_->compaction_epoch(), 2);  // two shards rewritten
  ASSERT_TRUE(sharded_->SaveDir(dir_).ok());
  auto loaded = ShardedFragmentIndex::LoadDir(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().compaction_epoch(), 2);
  EXPECT_EQ(loaded.value().db_size(), 15);
  EXPECT_EQ(loaded.value().num_live(), 13);
  EXPECT_EQ(loaded.value().shard_of(3), -1);
  EXPECT_EQ(loaded.value().shard_of(11), -1);
  EXPECT_FALSE(loaded.value().IsLive(3));
  EXPECT_TRUE(loaded.value().IsLive(4));
  for (int s = 0; s < loaded.value().num_shards(); ++s) {
    EXPECT_TRUE(loaded.value().shard(s).tombstones().empty());
  }
}

// The v4 manifest trailing section: the auto-compaction policy must
// survive SaveDir/LoadDir, so a reloaded server keeps compacting at the
// configured dead ratio.
TEST_F(ManifestCompatTest, V4ManifestRoundTripsCompactionPolicy) {
  sharded_->set_compact_dead_ratio(0.35);
  ASSERT_TRUE(sharded_->SaveDir(dir_).ok());
  auto loaded = ShardedFragmentIndex::LoadDir(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().compact_dead_ratio(), 0.35);
}

// A v3 directory (one written before the policy section existed) is
// exactly a v4 manifest with the version word rewound and the trailing
// ratio cut off — the strict-prefix property every format bump keeps. It
// must load with the policy off.
TEST_F(ManifestCompatTest, V3ManifestLoadsWithPolicyOff) {
  sharded_->set_compact_dead_ratio(0.35);
  ASSERT_TRUE(sharded_->SaveDir(dir_).ok());
  std::error_code ec;
  const auto full = std::filesystem::file_size(ManifestPath(), ec);
  ASSERT_FALSE(ec);
  std::filesystem::resize_file(ManifestPath(), full - sizeof(double), ec);
  ASSERT_FALSE(ec);
  {
    std::fstream patch(ManifestPath(),
                       std::ios::binary | std::ios::in | std::ios::out);
    patch.seekp(4);
    BinaryWriter writer(patch);
    writer.U32(3u);
    ASSERT_TRUE(writer.ok());
  }
  auto loaded = ShardedFragmentIndex::LoadDir(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().compact_dead_ratio(), 0.0);
  EXPECT_EQ(loaded.value().db_size(), sharded_->db_size());
}

// A v4 manifest whose policy ratio was cut off parsed far enough to know
// what it promised: structural disagreement, not garbage.
TEST_F(ManifestCompatTest, V4ManifestMissingPolicyIsInvalidArgument) {
  ASSERT_TRUE(sharded_->SaveDir(dir_).ok());
  std::error_code ec;
  const auto full = std::filesystem::file_size(ManifestPath(), ec);
  ASSERT_FALSE(ec);
  std::filesystem::resize_file(ManifestPath(), full - sizeof(double), ec);
  ASSERT_FALSE(ec);
  auto loaded = ShardedFragmentIndex::LoadDir(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
}

// A structurally valid manifest carrying a nonsense policy ratio is
// rejected loudly instead of arming a bogus auto-compaction threshold.
TEST_F(ManifestCompatTest, OutOfRangePolicyRatioIsInvalidArgument) {
  ASSERT_TRUE(sharded_->SaveDir(dir_).ok());
  std::error_code ec;
  const auto full = std::filesystem::file_size(ManifestPath(), ec);
  ASSERT_FALSE(ec);
  {
    std::fstream patch(ManifestPath(),
                       std::ios::binary | std::ios::in | std::ios::out);
    patch.seekp(static_cast<std::streamoff>(full - sizeof(double)));
    BinaryWriter writer(patch);
    writer.F64(17.5);
    ASSERT_TRUE(writer.ok());
  }
  auto loaded = ShardedFragmentIndex::LoadDir(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("dead ratio"), std::string::npos);
}

// A manifest cut off after its routing table (local ids and live counts
// missing) parsed far enough to know what it promised — the failure is a
// structural disagreement (InvalidArgument), not unreadable garbage, and
// never a crash.
TEST_F(ManifestCompatTest, TruncatedV3SectionsAreInvalidArgument) {
  // Layout: magic(4) version(4) shards(4) epoch(4), VecInt shard_of
  // (8 + 15*4), then the sections we cut off.
  std::error_code ec;
  const auto full = std::filesystem::file_size(ManifestPath(), ec);
  ASSERT_FALSE(ec);
  ASSERT_GT(full, 16u + 68u);
  std::filesystem::resize_file(ManifestPath(), 16 + 68, ec);
  ASSERT_FALSE(ec);
  auto loaded = ShardedFragmentIndex::LoadDir(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
}

TEST_F(ManifestCompatTest, TruncatedManifestIsParseError) {
  std::ofstream out(ManifestPath(), std::ios::binary | std::ios::trunc);
  BinaryWriter writer(out);
  writer.U32(kManifestMagic);
  writer.U32(2u);
  out.close();
  auto loaded = ShardedFragmentIndex::LoadDir(dir_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(ManifestCompatTest, BadMagicIsParseError) {
  WriteManifest(2, 3, std::vector<int>(15, 0));
  std::fstream patch(ManifestPath(),
                     std::ios::binary | std::ios::in | std::ios::out);
  patch.write("JUNK", 4);
  patch.close();
  auto loaded = ShardedFragmentIndex::LoadDir(dir_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace pis
