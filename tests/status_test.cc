#include "util/status.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace pis {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad sigma");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad sigma");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad sigma");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.ValueOr(3), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(3), 3);
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = r.MoveValue();
  EXPECT_EQ(v, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  PIS_RETURN_NOT_OK(FailIfNegative(x));
  return 2 * x;
}

Result<int> ChainedViaMacro(int x) {
  PIS_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(ResultTest, MacrosPropagate) {
  Result<int> ok = ChainedViaMacro(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 11);
  Result<int> err = ChainedViaMacro(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(StringUtilTest, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitWhitespace("  a\t b\n"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(Join({"x", "y"}, "-"), "x-y");
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_TRUE(StartsWith("prefix.rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

}  // namespace
}  // namespace pis
