// Lint fixture: reads the wall clock outside src/util/. scripts/lint.sh
// must REJECT this file (the static_analysis suite runs `lint.sh <this
// file>` and asserts failure + the "system_clock" diagnostic via
// check_negative.sh).
//
// system_clock::now() is banned outside util/ because the wall clock
// steps under NTP adjustment — a duration measured across a step is
// garbage, and a trace span built from one is worse than no span. All
// timing goes through util/timer.h (steady_clock / MonotonicNowNs).
#include <chrono>

int main() {
  // BAD: wall-clock read used as a timestamp for a measurement.
  auto start = std::chrono::system_clock::now();
  auto end = std::chrono::system_clock::now();
  return end < start ? 1 : 0;  // can genuinely happen, which is the point
}
