// Positive control for the static_analysis suite: idiomatic use of the
// annotated lock layer that must compile CLEANLY on every compiler, with
// clang additionally running -Wthread-safety -Werror over it.
//
// Without this control, the negative tests could "pass" because the
// fixtures fail for the wrong reason (a broken include path, a macro
// typo) rather than because the analysis fired. This TU exercises every
// construct the codebase relies on: a GUARDED_BY field, a REQUIRES
// private helper, EXCLUDES entry points, a CondVar wait loop with the
// condition re-checked under the lock, and scoped MutexLock release.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class BoundedCounter {
 public:
  void Add(int n) PIS_EXCLUDES(mu_) {
    pis::MutexLock lock(&mu_);
    AddLocked(n);
    cv_.NotifyAll();
  }

  int WaitUntilAtLeast(int target) PIS_EXCLUDES(mu_) {
    pis::MutexLock lock(&mu_);
    while (value_ < target) cv_.Wait(&mu_);
    return value_;
  }

  bool TryRead(int* out) PIS_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return false;
    *out = value_;
    mu_.Unlock();
    return true;
  }

 private:
  void AddLocked(int n) PIS_REQUIRES(mu_) { value_ += n; }

  pis::Mutex mu_;
  pis::CondVar cv_;
  int value_ PIS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  BoundedCounter c;
  c.Add(3);
  int snapshot = 0;
  (void)c.TryRead(&snapshot);
  return c.WaitUntilAtLeast(1) >= 1 ? 0 : 1;
}
