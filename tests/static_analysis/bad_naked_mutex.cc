// Lint fixture: declares raw standard-library lock primitives outside
// util/mutex.h. scripts/lint.sh must REJECT this file (the static_analysis
// suite runs `lint.sh <this file>` and asserts failure + the "naked"
// diagnostic via check_negative.sh).
//
// Raw std::mutex is banned project-wide because the thread-safety analysis
// only understands the annotated pis::Mutex capability type — a naked
// mutex is a lock the compiler cannot check, i.e. a hole in the proof.
#include <mutex>

namespace {

std::mutex naked_mu;  // BAD: raw mutex outside util/mutex.h.
int counter = 0;

}  // namespace

int main() {
  std::lock_guard<std::mutex> lock(naked_mu);  // BAD: raw lock adapter.
  return ++counter;
}
