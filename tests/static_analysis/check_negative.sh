#!/usr/bin/env bash
# Negative-test driver: asserts that a command FAILS and that its output
# matches an expected diagnostic regex.
#
# A negative-compilation test that only checks the exit code is worthless —
# a missing header or a typo in the fixture also fails the compile, and the
# test would keep "passing" long after the analysis it guards stopped
# firing. Requiring the specific diagnostic text proves the right rule
# rejected the right line.
#
# usage: check_negative.sh <expected-output-regex> <command> [args...]
set -u

if [ "$#" -lt 2 ]; then
  echo "usage: $0 <expected-output-regex> <command> [args...]" >&2
  exit 2
fi

expected="$1"
shift

out=$("$@" 2>&1)
command_status=$?

if [ "${command_status}" -eq 0 ]; then
  echo "NEGATIVE TEST FAILED: command succeeded but was expected to fail:" >&2
  echo "  $*" >&2
  printf '%s\n' "${out}" >&2
  exit 1
fi

if ! printf '%s\n' "${out}" | grep -Eq "${expected}"; then
  echo "NEGATIVE TEST FAILED: command failed (good) but its diagnostic did" >&2
  echo "not match the expected pattern /${expected}/. Output was:" >&2
  printf '%s\n' "${out}" >&2
  exit 1
fi

exit 0
