// Negative-compilation fixture: calling a PIS_EXCLUDES function with the
// excluded mutex held — the self-deadlock shape.
//
// Reload() declares it must NOT be entered with `mu_` held (it acquires
// the lock itself); Tick() calls it from under a MutexLock on that same
// mutex. With an unannotated lock this deadlocks at runtime,
// nondeterministically, in production. With the annotations it is a
// compile error: clang's
// -Wthread-safety -Werror must FAIL this TU with "cannot call function
// ... while mutex ... is held" (asserted by check_negative.sh).
// Clang-only, like bad_guarded_by.cc.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Widget {
 public:
  void Reload() PIS_EXCLUDES(mu_) {
    pis::MutexLock lock(&mu_);
    ++generation_;
  }

  void Tick() {
    pis::MutexLock lock(&mu_);
    Reload();  // BAD: re-enters mu_ -> self-deadlock at runtime.
  }

 private:
  pis::Mutex mu_;
  int generation_ PIS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Widget w;
  w.Tick();
  return 0;
}
