// Negative-compilation fixture: touching a PIS_GUARDED_BY field lock-free.
//
// Increment() writes `value_` without holding `mu_`, the exact shape of
// every data race the annotation pass exists to prevent. Compiling this TU
// with clang's -Wthread-safety -Werror must FAIL with "requires holding
// mutex" (asserted by check_negative.sh). Registered only under clang —
// gcc has no thread-safety analysis and the macros expand to nothing
// there, which is precisely why CI carries a clang job.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() { ++value_; }  // BAD: writes value_ without mu_.

  int Load() {
    pis::MutexLock lock(&mu_);
    return value_;
  }

 private:
  pis::Mutex mu_;
  int value_ PIS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Load();
}
