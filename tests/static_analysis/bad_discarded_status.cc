// Negative-compilation fixture: silently discarding a Status.
//
// util/status.h marks Status (and Result<T>) [[nodiscard]]; this TU drops
// one on the floor, so compiling it with -Werror=unused-result must FAIL
// with a nodiscard/unused-result diagnostic. The static_analysis suite
// asserts exactly that (see check_negative.sh). If this file ever starts
// compiling, the error-handling contract has regressed — an ignored
// IOError from the WAL is how a server silently loses data.
//
// Works on both gcc and clang: class-level [[nodiscard]] applies to every
// function returning the type by value.
#include "util/status.h"

namespace {

pis::Status MightFail() { return pis::Status::IOError("disk unplugged"); }

}  // namespace

int main() {
  MightFail();  // BAD: the returned Status is discarded.
  return 0;
}
