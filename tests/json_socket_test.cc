// util/json + util/socket: the protocol substrate of the serving layer.
// JSON must round-trip the values the protocol moves (graph records with
// newlines, ids, ratios) and reject malformed frames without crashing;
// sockets must frame lines exactly and unblock cleanly on shutdown.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "util/json.h"
#include "util/socket.h"

namespace pis {
namespace {

TEST(JsonTest, ObjectRoundTrip) {
  JsonValue obj = JsonValue::Object();
  obj.Set("op", "query");
  obj.Set("id", 17);
  obj.Set("ratio", 0.25);
  obj.Set("ok", true);
  obj.Set("note", JsonValue());
  JsonValue answers = JsonValue::Array();
  answers.Push(1);
  answers.Push(2);
  obj.Set("answers", std::move(answers));

  const std::string text = obj.Serialize();
  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().GetStringOr("op", ""), "query");
  EXPECT_EQ(parsed.value().GetNumberOr("id", -1), 17);
  EXPECT_EQ(parsed.value().GetNumberOr("ratio", -1), 0.25);
  EXPECT_TRUE(parsed.value().GetBoolOr("ok", false));
  ASSERT_NE(parsed.value().Find("note"), nullptr);
  EXPECT_TRUE(parsed.value().Find("note")->is_null());
  const JsonValue* arr = parsed.value().Find("answers");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->size(), 2u);
  EXPECT_EQ(arr->at(0).AsNumber(), 1);
  // Serialization is deterministic (sorted keys), so it is its own golden.
  EXPECT_EQ(parsed.value().Serialize(), text);
}

TEST(JsonTest, IntegersRenderWithoutDecimalPoint) {
  JsonValue obj = JsonValue::Object();
  obj.Set("id", 42);
  obj.Set("big", static_cast<uint64_t>(1) << 40);
  EXPECT_EQ(obj.Serialize(), "{\"big\":1099511627776,\"id\":42}");
}

TEST(JsonTest, EscapesRoundTrip) {
  // A graph record is a multi-line string — exactly what must survive.
  const std::string record = "t # 0\nv 0 1\nv 1 2\ne 0 1 1\n\t\"quoted\"\\";
  JsonValue obj = JsonValue::Object();
  obj.Set("graph", record);
  auto parsed = JsonValue::Parse(obj.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().GetStringOr("graph", ""), record);
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  auto parsed = JsonValue::Parse("\"a\\u00e9\\u4e2d\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().AsString(), "a\xc3\xa9\xe4\xb8\xad");
}

TEST(JsonTest, ParseErrors) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "{\"a\":1}x",
        "\"bad\\escape\"", "01a", "nan", "\"ctrl\x01char\""}) {
    auto parsed = JsonValue::Parse(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError) << bad;
    }
  }
}

// RFC 8259 number grammar: no leading '.', no trailing '.', no empty
// exponent, no leading zeros, no bare sign, no '+' prefix. strtod accepts
// most of these; the parser must not.
TEST(JsonTest, NonRfc8259NumbersRejected) {
  for (const char* bad : {".5", "1.", "1.e5", "01", "-01", "00", "-", "+1",
                          "1e", "1e+", "1e-", "0x1f", "1.2.3", "--1", "Inf",
                          "infinity", "NaN", "- 1"}) {
    auto parsed = JsonValue::Parse(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError) << bad;
    }
  }
}

TEST(JsonTest, Rfc8259NumbersAccepted) {
  const struct {
    const char* text;
    double value;
  } cases[] = {{"0", 0.0},        {"-0", -0.0},     {"0.5", 0.5},
               {"-0.5", -0.5},    {"10", 10.0},     {"1e5", 1e5},
               {"1E5", 1e5},      {"1e+5", 1e5},    {"1e-5", 1e-5},
               {"0e0", 0.0},      {"1.25e2", 125.0}};
  for (const auto& c : cases) {
    auto parsed = JsonValue::Parse(c.text);
    ASSERT_TRUE(parsed.ok()) << c.text << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed.value().AsNumber(), c.value) << c.text;
  }
}

// Serialization uses shortest-round-trip formatting (std::to_chars), so
// any finite double — however many significant digits it needs — must
// survive Serialize -> Parse exactly. %.12g, the previous formatter, fails
// this for most irrational-looking values (e.g. 0.1 + 0.2).
TEST(JsonTest, DoublesRoundTripExactly) {
  std::mt19937_64 rng(20260808);
  std::vector<double> values = {0.1,
                                0.1 + 0.2,
                                1.0 / 3.0,
                                6.02214076e23,
                                -2.2250738585072014e-308,  // min normal
                                5e-324,                    // min subnormal
                                1.7976931348623157e308,    // max finite
                                123456.789012345678,
                                -0.000001234567890123456};
  // Random bit patterns cover the space far beyond hand-picked cases.
  std::uniform_int_distribution<uint64_t> bits;
  while (values.size() < 500) {
    uint64_t raw = bits(rng);
    double d;
    std::memcpy(&d, &raw, sizeof d);
    if (std::isfinite(d)) values.push_back(d);
  }
  for (double d : values) {
    const std::string text = JsonValue(d).Serialize();
    auto parsed = JsonValue::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    const double back = parsed.value().AsNumber();
    EXPECT_EQ(std::memcmp(&back, &d, sizeof d), 0)
        << "wanted " << d << ", got " << back << " via " << text;
  }
}

// JSON has no Infinity/NaN literals; serializing one must degrade to null
// (parseable) rather than emit text no parser accepts.
TEST(JsonTest, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).Serialize(),
            "null");
  EXPECT_EQ(JsonValue(-std::numeric_limits<double>::infinity()).Serialize(),
            "null");
  EXPECT_EQ(JsonValue(std::nan("")).Serialize(), "null");
}

TEST(JsonTest, NestingDepthIsBounded) {
  std::string deep(200, '[');
  auto parsed = JsonValue::Parse(deep);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("deep"), std::string::npos);
}

TEST(JsonTest, GetOrHelpersFallBackOnWrongType) {
  auto parsed = JsonValue::Parse("{\"s\":\"x\",\"n\":3}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().GetNumberOr("s", -1), -1);
  EXPECT_EQ(parsed.value().GetStringOr("n", "fallback"), "fallback");
  EXPECT_EQ(parsed.value().GetNumberOr("missing", 7), 7);
}

TEST(SocketTest, LoopbackLineRoundTrip) {
  auto listener = TcpListener::Listen(0, /*loopback_only=*/true);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  ASSERT_GT(listener.value().port(), 0);

  std::thread server([&] {
    auto conn = listener.value().Accept();
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    // Echo until the client hangs up.
    while (true) {
      auto line = conn.value().RecvLine();
      if (!line.ok()) break;
      ASSERT_TRUE(conn.value().SendLine("echo " + line.value()).ok());
    }
  });

  auto client = TcpSocket::Connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // Two frames sent back to back exercise the framing buffer: the first
  // RecvLine may pull both into the buffer.
  ASSERT_TRUE(client.value().SendLine("one").ok());
  ASSERT_TRUE(client.value().SendLine("two").ok());
  auto first = client.value().RecvLine();
  auto second = client.value().RecvLine();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), "echo one");
  EXPECT_EQ(second.value(), "echo two");

  client.value().Close();
  server.join();
}

TEST(SocketTest, RecvLineReportsCleanEofAsConnectionClosed) {
  auto listener = TcpListener::Listen(0, /*loopback_only=*/true);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener.value().Accept();
    ASSERT_TRUE(conn.ok());
    conn.value().Close();
  });
  auto client = TcpSocket::Connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.ok());
  auto line = client.value().RecvLine();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kIOError);
  EXPECT_NE(line.status().message().find("closed"), std::string::npos);
  server.join();
}

TEST(SocketTest, ShutdownUnblocksAccept) {
  auto listener = TcpListener::Listen(0, /*loopback_only=*/true);
  ASSERT_TRUE(listener.ok());
  std::thread acceptor([&] {
    auto conn = listener.value().Accept();
    EXPECT_FALSE(conn.ok());
  });
  // Give the acceptor a moment to park in accept(2); the shutdown must
  // still unblock it even if it has not parked yet.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  listener.value().Shutdown();
  acceptor.join();
}

// The deadline contract that keeps a wedged replica from hanging the
// router: a peer that accepts traffic but never answers must yield
// DeadlineExceeded, not block forever.
TEST(SocketTest, DeadlineExpiresOnDeliberatelySilentServer) {
  auto listener = TcpListener::Listen(0, /*loopback_only=*/true);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener.value().Accept();
    ASSERT_TRUE(conn.ok());
    // Swallow the request and say nothing; hold the connection open until
    // the client hangs up so the silence is the only signal.
    auto request = conn.value().RecvLine();
    ASSERT_TRUE(request.ok());
    EXPECT_EQ(request.value(), "ping");
    (void)conn.value().RecvLine();  // parks until the client closes
  });

  auto client = TcpSocket::Connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().SetDeadline(100).ok());
  ASSERT_TRUE(client.value().SendLine("ping").ok());
  auto reply = client.value().RecvLine();
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded)
      << reply.status().ToString();
  client.value().Close();
  server.join();
}

// Connect(timeout_ms) must install the same deadline on the connected
// socket — the caller gets silent-peer protection without a second call.
TEST(SocketTest, ConnectTimeoutInstallsIoDeadline) {
  auto listener = TcpListener::Listen(0, /*loopback_only=*/true);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener.value().Accept();
    ASSERT_TRUE(conn.ok());
    (void)conn.value().RecvLine();  // never replies; parks until close
  });

  auto client =
      TcpSocket::Connect("127.0.0.1", listener.value().port(),
                         /*timeout_ms=*/100);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto reply = client.value().RecvLine();
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded)
      << reply.status().ToString();
  client.value().Close();
  server.join();
}

// A timed-out read poisons nothing: once the peer does answer, the same
// socket delivers the frame (the router relies on this when it retries a
// slow-but-alive replica after a failover round).
TEST(SocketTest, SocketSurvivesDeadlineExpiryAndReadsLateReply) {
  auto listener = TcpListener::Listen(0, /*loopback_only=*/true);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener.value().Accept();
    ASSERT_TRUE(conn.ok());
    auto first = conn.value().RecvLine();
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value(), "ping");
    // Reply only when the client explicitly asks — the client's first
    // read is guaranteed to time out, no sleep races.
    auto go = conn.value().RecvLine();
    ASSERT_TRUE(go.ok());
    EXPECT_EQ(go.value(), "now");
    ASSERT_TRUE(conn.value().SendLine("pong").ok());
  });

  auto client = TcpSocket::Connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().SetDeadline(100).ok());
  ASSERT_TRUE(client.value().SendLine("ping").ok());
  auto timed_out = client.value().RecvLine();
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);

  ASSERT_TRUE(client.value().SetDeadline(10000).ok());
  ASSERT_TRUE(client.value().SendLine("now").ok());
  auto reply = client.value().RecvLine();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value(), "pong");
  client.value().Close();
  server.join();
}

TEST(SocketTest, OversizedFrameIsRejected) {
  auto listener = TcpListener::Listen(0, /*loopback_only=*/true);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener.value().Accept();
    ASSERT_TRUE(conn.ok());
    auto line = conn.value().RecvLine(/*max_bytes=*/64);
    EXPECT_FALSE(line.ok());
    EXPECT_EQ(line.status().code(), StatusCode::kInvalidArgument);
  });
  auto client = TcpSocket::Connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().SendLine(std::string(1024, 'x')).ok());
  server.join();
}

}  // namespace
}  // namespace pis
