// Concurrent correctness of the serving layer (runs under TSan in CI via
// the `engine` label): reader threads hammer EngineHost::Search while the
// main thread applies an add / remove / compact / rebalance schedule.
// Every reader result must equal the oracle answers of exactly the epoch
// its snapshot was published at — not merely "some plausible answer" —
// which is the linearizability contract of the host. The oracle is a
// LifecycleHarness-driven twin index taken through the same schedule step
// by step (its equivalence to from-scratch rebuilds is pinned by the
// update-equivalence and compaction suites).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "engine_test_util.h"
#include "server/engine_host.h"

namespace pis {
namespace {

using testing::LifecycleHarness;
using testing::SampleQueries;

struct Observation {
  uint64_t epoch = 0;
  size_t probe = 0;
  bool ok = false;
  std::vector<int> answers;
};

TEST(ConcurrentEngineTest, ReadersMatchTheExactSnapshotStateTheyPinned) {
  LifecycleHarness::Options opt;
  opt.num_shards = 3;
  opt.seed = 5;
  opt.initial_graphs = 12;
  opt.pool_graphs = 40;
  LifecycleHarness harness(opt);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  PisOptions popt;
  popt.sigma = 2.0;
  // The host starts from copies of the harness state; both sides then apply
  // the identical deterministic schedule, so after k steps the host's
  // epoch-k snapshot and the harness index are the same logical state.
  EngineHost host(harness.slots(), harness.sharded(), popt);
  std::vector<Graph> probes = SampleQueries(harness.slots(), 3, 6, 99);

  // expected[k][p]: oracle answers of probe p after k schedule steps.
  std::vector<std::vector<std::vector<int>>> expected;
  auto record_oracle = [&] {
    ShardedPisEngine oracle(&harness.slots(), &harness.sharded(), popt);
    std::vector<std::vector<int>> per_probe;
    for (const Graph& q : probes) {
      auto r = oracle.Search(q);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      per_probe.push_back(r.value().answers);
    }
    expected.push_back(std::move(per_probe));
  };
  record_oracle();
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::vector<std::vector<Observation>> observations(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      size_t i = static_cast<size_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        // Pin one snapshot; its epoch names the oracle state to compare
        // against. Verification happens on the main thread after joining.
        std::shared_ptr<const EngineHost::Snapshot> snap = host.snapshot();
        Observation obs;
        obs.epoch = snap->epoch;
        obs.probe = i++ % probes.size();
        auto result = snap->engine.Search(probes[obs.probe]);
        obs.ok = result.ok();
        if (result.ok()) obs.answers = std::move(result.value().answers);
        observations[r].push_back(std::move(obs));
      }
    });
  }

  // The mutation schedule: adds, removes, compactions, and a rebalance,
  // interleaved with the readers above. One host mutator call per step —
  // the host epoch equals the step count by construction.
  std::vector<int> alive;
  for (int gid = 0; gid < opt.initial_graphs; ++gid) alive.push_back(gid);
  constexpr int kSteps = 16;
  for (int step = 0; step < kSteps; ++step) {
    switch (step % 8) {
      case 0:
      case 2:
      case 5: {  // add
        harness.AddOne();
        if (::testing::Test::HasFatalFailure()) break;
        const int gid = harness.num_slots() - 1;
        auto added = host.AddGraph(harness.slots().at(gid));
        ASSERT_TRUE(added.ok()) << added.status().ToString();
        ASSERT_EQ(added.value(), gid);
        alive.push_back(gid);
        break;
      }
      case 1:
      case 3:
      case 6: {  // remove
        ASSERT_FALSE(alive.empty());
        const size_t victim = (static_cast<size_t>(step) * 7) % alive.size();
        const int gid = alive[victim];
        harness.RemoveGid(gid);
        if (::testing::Test::HasFatalFailure()) break;
        ASSERT_TRUE(host.RemoveGraph(gid).ok());
        alive.erase(alive.begin() + static_cast<long>(victim));
        break;
      }
      case 4: {  // compact every dirty shard
        harness.CompactSharded(0.0);
        if (::testing::Test::HasFatalFailure()) break;
        auto compacted = host.Compact(0.0);
        ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
        break;
      }
      case 7: {  // rebalance
        auto migrated_harness = harness.sharded().Rebalance(harness.slots());
        ASSERT_TRUE(migrated_harness.ok());
        auto migrated = host.Rebalance();
        ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
        EXPECT_EQ(migrated.value(), migrated_harness.value());
        break;
      }
    }
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    record_oracle();
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    // Let the readers sample this epoch before the next mutation lands.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(host.snapshot()->epoch, static_cast<uint64_t>(kSteps));

  size_t total = 0;
  for (const std::vector<Observation>& per_reader : observations) {
    for (const Observation& obs : per_reader) {
      ASSERT_TRUE(obs.ok) << "a concurrent Search failed";
      ASSERT_LE(obs.epoch, static_cast<uint64_t>(kSteps));
      EXPECT_EQ(obs.answers, expected[obs.epoch][obs.probe])
          << "epoch " << obs.epoch << " probe " << obs.probe
          << ": answer does not match the state the snapshot was "
             "published at";
      ++total;
    }
  }
  // Sanity: the readers actually ran against the mutation schedule.
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace pis
