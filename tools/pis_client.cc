// pis_client: command-line client for the pis_server JSON protocol.
//
//   pis_client health    --port P [--host H]
//   pis_client stats     --port P
//   pis_client query     --port P --query q.txt [--sigma S]
//   pis_client add       --port P --graphs new.txt
//   pis_client remove    --port P --ids 3,17,42
//   pis_client compact   --port P [--min_dead_ratio R]
//   pis_client shutdown  --port P
//   pis_client raw       --port P          (JSON lines from stdin)
//
// Every server reply is printed verbatim — one JSON object per line — so
// scripts can pipe the output straight into a JSON tool. The exit code is
// 0 iff every reply had "ok":true.
//
// `query` sends each record of --query as one query request on a single
// connection; `add` likewise indexes every record of --graphs.
#include <cstdio>
#include <iostream>
#include <string>

#include "pis.h"
#include "util/flags.h"
#include "util/socket.h"
#include "util/string_util.h"

using namespace pis;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int FailUsage() {
  std::fprintf(stderr,
               "usage: pis_client "
               "<health|stats|query|add|remove|compact|shutdown|raw> "
               "--port P [flags]\nRun a subcommand with --help for its "
               "flags.\n");
  return 2;
}

/// Sends one request line, prints the reply line, and returns whether the
/// reply had "ok":true.
Result<bool> RoundTrip(TcpSocket* conn, const JsonValue& request) {
  PIS_RETURN_NOT_OK(conn->SendLine(request.Serialize()));
  PIS_ASSIGN_OR_RETURN(std::string reply, conn->RecvLine());
  std::printf("%s\n", reply.c_str());
  PIS_ASSIGN_OR_RETURN(JsonValue parsed, JsonValue::Parse(reply));
  return parsed.GetBoolOr("ok", false);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return FailUsage();
  const std::string cmd = argv[1];
  std::string host = "127.0.0.1";
  int port = 4871;
  std::string query_path;
  std::string graphs_path;
  std::string ids;
  double sigma = -1;
  double min_dead_ratio = 0.0;

  FlagSet flags;
  flags.AddString("host", &host, "server host");
  flags.AddInt("port", &port, "server port");
  flags.AddString("query", &query_path, "query graph file (query)");
  flags.AddString("graphs", &graphs_path, "graphs to add (add)");
  flags.AddString("ids", &ids, "comma-separated graph ids (remove)");
  flags.AddDouble("sigma", &sigma, "per-query sigma override (query; "
                  "< 0 = server default)");
  flags.AddDouble("min_dead_ratio", &min_dead_ratio,
                  "compaction threshold (compact)");
  Status st = flags.Parse(argc - 1, argv + 1);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) return Fail(st);

  auto conn = TcpSocket::Connect(host, port);
  if (!conn.ok()) return Fail(conn.status());
  TcpSocket socket = conn.MoveValue();
  bool all_ok = true;

  auto run = [&](const JsonValue& request) -> Status {
    PIS_ASSIGN_OR_RETURN(bool ok, RoundTrip(&socket, request));
    all_ok = all_ok && ok;
    return Status::OK();
  };

  Status failure = Status::OK();
  if (cmd == "health" || cmd == "stats" || cmd == "shutdown" ||
      cmd == "compact") {
    JsonValue request = JsonValue::Object();
    request.Set("op", cmd);
    if (cmd == "compact" && min_dead_ratio > 0) {
      request.Set("min_dead_ratio", min_dead_ratio);
    }
    failure = run(request);
  } else if (cmd == "query" || cmd == "add") {
    const std::string& path = cmd == "query" ? query_path : graphs_path;
    if (path.empty()) {
      return Fail(Status::InvalidArgument(
          cmd == "query" ? "--query is required" : "--graphs is required"));
    }
    auto records = ReadGraphDatabaseFile(path);
    if (!records.ok()) return Fail(records.status());
    for (const Graph& g : records.value().graphs()) {
      JsonValue request = JsonValue::Object();
      request.Set("op", cmd);
      request.Set("graph", FormatGraph(g, 0));
      if (cmd == "query" && sigma >= 0) request.Set("sigma", sigma);
      failure = run(request);
      if (!failure.ok()) break;
    }
  } else if (cmd == "remove") {
    if (ids.empty()) return Fail(Status::InvalidArgument("--ids is required"));
    for (const std::string& token : Split(ids, ',')) {
      int id = 0;
      try {
        size_t used = 0;
        id = std::stoi(token, &used);
        if (used != token.size()) throw std::invalid_argument(token);
      } catch (...) {
        return Fail(
            Status::InvalidArgument("bad graph id '" + token + "' in --ids"));
      }
      JsonValue request = JsonValue::Object();
      request.Set("op", "remove");
      request.Set("id", id);
      failure = run(request);
      if (!failure.ok()) break;
    }
  } else if (cmd == "raw") {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      failure = socket.SendLine(line);
      if (!failure.ok()) break;
      auto reply = socket.RecvLine();
      if (!reply.ok()) {
        failure = reply.status();
        break;
      }
      std::printf("%s\n", reply.value().c_str());
      auto parsed = JsonValue::Parse(reply.value());
      all_ok = all_ok && parsed.ok() && parsed.value().GetBoolOr("ok", false);
    }
  } else {
    return FailUsage();
  }

  if (!failure.ok()) return Fail(failure);
  return all_ok ? 0 : 1;
}
