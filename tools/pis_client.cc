// pis_client: command-line client for the pis_server / pis_router JSON
// protocol.
//
//   pis_client health    --port P [--host H] [--timeout_ms T]
//   pis_client stats     --port P
//   pis_client query     --port P --query q.txt [--sigma S] [--trace]
//   pis_client add       --port P --graphs new.txt
//   pis_client remove    --port P --ids 3,17,42
//   pis_client compact   --port P [--min_dead_ratio R]
//   pis_client metrics   --port P          (Prometheus text to stdout)
//   pis_client shutdown  --port P
//   pis_client raw       --port P          (JSON lines from stdin)
//
// Every server reply is printed verbatim — one JSON object per line — so
// scripts can pipe the output straight into a JSON tool. Two decoded
// conveniences on top: `metrics` prints the exposition text itself (the
// JSON-escaped "text" field is useless to a scraper), and `query --trace`
// additionally pretty-prints the reply's span tree to stderr — stdout
// stays one verbatim JSON line per query.
//
// Exit codes distinguish what failed, so scripts can tell a down server
// from a rejected request:
//   0  every reply had "ok":true
//   1  the server answered, but some reply had "ok":false
//   2  usage error (bad flags, unknown subcommand, unreadable input file)
//   3  transport error (connect refused/timed out, deadline exceeded
//      mid-request, connection lost, unparsable reply frame)
//
// --timeout_ms bounds the connect AND every round trip; a server that
// accepts but never answers yields exit 3 instead of hanging forever.
//
// `query` sends each record of --query as one query request on a single
// connection; `add` likewise indexes every record of --graphs.
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>

#include "pis.h"
#include "util/flags.h"
#include "util/socket.h"
#include "util/string_util.h"

using namespace pis;

namespace {

constexpr int kExitAppFailure = 1;
constexpr int kExitUsage = 2;
constexpr int kExitTransport = 3;

int Fail(const Status& status, int code) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return code;
}

int FailUsage() {
  std::fprintf(stderr,
               "usage: pis_client "
               "<health|stats|query|add|remove|compact|metrics|shutdown|raw> "
               "--port P [flags]\nRun a subcommand with --help for its "
               "flags.\n");
  return kExitUsage;
}

/// Sends one request line, prints the reply line, and returns whether the
/// reply had "ok":true. Any error here is a transport failure: the wire
/// broke or produced an unparsable frame (application failures arrive as
/// well-formed {"ok":false} replies). `reply_out` (nullable) receives the
/// parsed reply.
Result<bool> RoundTrip(TcpSocket* conn, const JsonValue& request,
                       JsonValue* reply_out = nullptr) {
  PIS_RETURN_NOT_OK(conn->SendLine(request.Serialize()));
  PIS_ASSIGN_OR_RETURN(std::string reply, conn->RecvLine());
  std::printf("%s\n", reply.c_str());
  PIS_ASSIGN_OR_RETURN(JsonValue parsed, JsonValue::Parse(reply));
  const bool ok = parsed.GetBoolOr("ok", false);
  if (reply_out != nullptr) *reply_out = std::move(parsed);
  return ok;
}

/// Indented one-line-per-span rendering of a trace span subtree (stderr).
void PrintSpanTree(const JsonValue& span, int depth) {
  if (!span.is_object()) return;
  std::fprintf(stderr, "  %*s%-24s %9.3f ms  (at %.3f ms)\n", depth * 2, "",
               span.GetStringOr("name", "?").c_str(),
               span.GetNumberOr("dur_ms", 0), span.GetNumberOr("start_ms", 0));
  const JsonValue* children = span.Find("children");
  if (children == nullptr || !children->is_array()) return;
  for (const JsonValue& child : children->items()) {
    PrintSpanTree(child, depth + 1);
  }
}

/// The `query --trace` stderr breakdown: header plus the span forest.
void PrintTrace(const JsonValue& trace) {
  std::fprintf(stderr, "trace %s: %.3f ms total\n",
               trace.GetStringOr("trace_id", "?").c_str(),
               trace.GetNumberOr("total_ms", 0));
  const JsonValue* spans = trace.Find("spans");
  if (spans == nullptr || !spans->is_array()) return;
  for (const JsonValue& span : spans->items()) PrintSpanTree(span, 0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return FailUsage();
  const std::string cmd = argv[1];
  std::string host = "127.0.0.1";
  int port = 4871;
  std::string query_path;
  std::string graphs_path;
  std::string ids;
  double sigma = -1;
  double min_dead_ratio = 0.0;
  int timeout_ms = 0;
  bool trace = false;

  FlagSet flags;
  flags.AddString("host", &host, "server host");
  flags.AddInt("port", &port, "server port");
  flags.AddString("query", &query_path, "query graph file (query)");
  flags.AddString("graphs", &graphs_path, "graphs to add (add)");
  flags.AddString("ids", &ids, "comma-separated graph ids (remove)");
  flags.AddDouble("sigma", &sigma, "per-query sigma override (query; "
                  "< 0 = server default)");
  flags.AddDouble("min_dead_ratio", &min_dead_ratio,
                  "compaction threshold (compact)");
  flags.AddInt("timeout_ms", &timeout_ms,
               "connect + per-request deadline (0 = block forever); a "
               "deadline failure exits 3");
  flags.AddBool("trace", &trace,
                "request a per-query span tree and pretty-print it to "
                "stderr (query)");
  Status st = flags.Parse(argc - 1, argv + 1);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) return Fail(st, kExitUsage);

  auto conn = TcpSocket::Connect(host, port, timeout_ms);
  if (!conn.ok()) return Fail(conn.status(), kExitTransport);
  TcpSocket socket = conn.MoveValue();
  bool all_ok = true;

  auto run = [&](const JsonValue& request) -> Status {
    PIS_ASSIGN_OR_RETURN(bool ok, RoundTrip(&socket, request));
    all_ok = all_ok && ok;
    return Status::OK();
  };

  Status failure = Status::OK();
  if (cmd == "metrics") {
    // Scraper-friendly: the exposition text goes to stdout undecorated
    // instead of the verbatim (JSON-escaped) reply line.
    JsonValue request = JsonValue::Object();
    request.Set("op", "metrics");
    failure = socket.SendLine(request.Serialize());
    if (failure.ok()) {
      auto reply = socket.RecvLine();
      if (!reply.ok()) {
        failure = reply.status();
      } else {
        auto parsed = JsonValue::Parse(reply.value());
        if (!parsed.ok()) {
          failure = parsed.status();
        } else if (parsed.value().GetBoolOr("ok", false)) {
          std::fputs(parsed.value().GetStringOr("text", "").c_str(), stdout);
        } else {
          std::printf("%s\n", reply.value().c_str());
          all_ok = false;
        }
      }
    }
  } else if (cmd == "health" || cmd == "stats" || cmd == "shutdown" ||
             cmd == "compact") {
    JsonValue request = JsonValue::Object();
    request.Set("op", cmd);
    if (cmd == "compact" && min_dead_ratio > 0) {
      request.Set("min_dead_ratio", min_dead_ratio);
    }
    failure = run(request);
  } else if (cmd == "query" || cmd == "add") {
    const std::string& path = cmd == "query" ? query_path : graphs_path;
    if (path.empty()) {
      return Fail(Status::InvalidArgument(cmd == "query"
                                              ? "--query is required"
                                              : "--graphs is required"),
                  kExitUsage);
    }
    auto records = ReadGraphDatabaseFile(path);
    if (!records.ok()) return Fail(records.status(), kExitUsage);
    for (const Graph& g : records.value().graphs()) {
      JsonValue request = JsonValue::Object();
      request.Set("op", cmd);
      request.Set("graph", FormatGraph(g, 0));
      if (cmd == "query" && sigma >= 0) request.Set("sigma", sigma);
      if (cmd == "query" && trace) request.Set("trace", true);
      JsonValue reply;
      Result<bool> ok = RoundTrip(&socket, request, &reply);
      if (!ok.ok()) {
        failure = ok.status();
        break;
      }
      all_ok = all_ok && ok.value();
      if (const JsonValue* t = reply.Find("trace"); t != nullptr) {
        PrintTrace(*t);
      }
    }
  } else if (cmd == "remove") {
    if (ids.empty()) {
      return Fail(Status::InvalidArgument("--ids is required"), kExitUsage);
    }
    for (const std::string& token : Split(ids, ',')) {
      int id = 0;
      try {
        size_t used = 0;
        id = std::stoi(token, &used);
        if (used != token.size()) throw std::invalid_argument(token);
      } catch (...) {
        return Fail(
            Status::InvalidArgument("bad graph id '" + token + "' in --ids"),
            kExitUsage);
      }
      JsonValue request = JsonValue::Object();
      request.Set("op", "remove");
      request.Set("id", id);
      failure = run(request);
      if (!failure.ok()) break;
    }
  } else if (cmd == "raw") {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      failure = socket.SendLine(line);
      if (!failure.ok()) break;
      auto reply = socket.RecvLine();
      if (!reply.ok()) {
        failure = reply.status();
        break;
      }
      std::printf("%s\n", reply.value().c_str());
      auto parsed = JsonValue::Parse(reply.value());
      all_ok = all_ok && parsed.ok() && parsed.value().GetBoolOr("ok", false);
    }
  } else {
    return FailUsage();
  }

  if (!failure.ok()) return Fail(failure, kExitTransport);
  return all_ok ? 0 : kExitAppFailure;
}
