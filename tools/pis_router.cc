// pis_router: fan-out/merge front end over a cluster of pis_server shard
// replicas.
//
//   pis_router --manifest cluster.json [--port P] [--workers N]
//              [--sigma S] [--sketch] [--timeout_ms T]
//              [--breaker_threshold K] [--breaker_open_ms B]
//              [--health_interval_ms H]
//              [--slow_query_ms T] [--slow_query_log PATH]
//
// The manifest maps every shard to its replica endpoints (see
// docs/cluster.md):
//
//   {"shards": [{"replicas": ["127.0.0.1:4871", "127.0.0.1:4874"]},
//               {"replicas": ["127.0.0.1:4872", "127.0.0.1:4875"]}]}
//
// Startup bootstraps the global routing state from the highest-epoch
// reachable replica, then serves the client protocol of pis_server
// (health/stats/query/add/remove/shutdown) on the bound port: queries fan
// shard_query across a healthy cover and run the global PIS filter over
// the merged per-fragment maps, writes replicate to every replica of the
// owning shard with per-endpoint ordered catch-up for replicas that miss
// them. "pis_router listening on port <P>" goes to stdout once serving.
//
// --sigma and --sketch must match the cluster's serving config (they
// parameterize the global filter); --timeout_ms bounds every replica round
// trip so a wedged replica degrades to failover, not a hang.
//
// Observability (docs/observability.md): {"op":"metrics"} renders the
// fabric metrics (per-endpoint RPC latency, breaker state, catch-up depth,
// failovers) plus per-op request metrics as Prometheus text; a query with
// "trace":true returns the two-round span tree including each replica's
// own child spans. --slow_query_ms / --slow_query_log mirror pis_server.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "server/cluster_engine.h"
#include "server/router_server.h"
#include "util/flags.h"

using namespace pis;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  int port = 4870;
  int workers = 4;
  double sigma = 2.0;
  bool sketch = false;
  int timeout_ms = 5000;
  int breaker_threshold = 3;
  int breaker_open_ms = 500;
  int health_interval_ms = 100;
  double slow_query_ms = 0;
  std::string slow_query_log_path;

  FlagSet flags;
  flags.AddString("manifest", &manifest_path,
                  "cluster manifest JSON (shard -> replica endpoints)");
  flags.AddInt("port", &port, "TCP port (0 = ephemeral)");
  flags.AddInt("workers", &workers, "concurrent connections served");
  flags.AddDouble("sigma", &sigma, "default max superimposed distance");
  flags.AddBool("sketch", &sketch,
                "run the superimposed-sketch prefilter on every query "
                "(must match the shard servers' build)");
  flags.AddInt("timeout_ms", &timeout_ms,
               "per-replica round-trip deadline (0 = block forever)");
  flags.AddInt("breaker_threshold", &breaker_threshold,
               "consecutive transport failures that open a replica's "
               "circuit breaker");
  flags.AddInt("breaker_open_ms", &breaker_open_ms,
               "how long an open breaker rejects a replica before the "
               "health prober retries it");
  flags.AddInt("health_interval_ms", &health_interval_ms,
               "health-probe and catch-up-drain cadence");
  flags.AddDouble("slow_query_ms", &slow_query_ms,
                  "log any query slower than this many milliseconds as a "
                  "single-line JSON span tree (0 = disabled)");
  flags.AddString("slow_query_log", &slow_query_log_path,
                  "slow-query log file (appended; empty = stderr)");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) return Fail(st);
  if (manifest_path.empty()) {
    return Fail(Status::InvalidArgument("--manifest is required"));
  }

  sigset_t handled;
  sigemptyset(&handled);
  sigaddset(&handled, SIGINT);
  sigaddset(&handled, SIGTERM);
  sigaddset(&handled, SIGUSR1);
  pthread_sigmask(SIG_BLOCK, &handled, nullptr);

  Result<ClusterManifest> manifest = ClusterManifest::LoadFile(manifest_path);
  if (!manifest.ok()) return Fail(manifest.status());

  ClusterEngineOptions cluster_options;
  cluster_options.timeout_ms = timeout_ms;
  cluster_options.breaker_threshold = breaker_threshold;
  cluster_options.breaker_open_ms = breaker_open_ms;
  cluster_options.health_interval_ms = health_interval_ms;
  cluster_options.options.sigma = sigma;
  cluster_options.options.sketch_enabled = sketch;
  // The process-global registry: fabric metrics (breakers, RPC latency,
  // catch-up) and the router's per-op request metrics in one exposition.
  cluster_options.metrics = &MetricsRegistry::Global();
  Result<std::unique_ptr<ClusterEngine>> cluster =
      ClusterEngine::Connect(manifest.value(), cluster_options);
  if (!cluster.ok()) return Fail(cluster.status());
  cluster.value()->StartHealthThread();

  SlowQueryLog slow_log(slow_query_log_path, slow_query_ms);
  RouterServerOptions server_options;
  server_options.port = port;
  server_options.num_workers = workers;
  server_options.metrics = &MetricsRegistry::Global();
  server_options.slow_query_log = &slow_log;
  RouterServer server(cluster.value().get(), server_options);
  Status started = server.Start();
  if (!started.ok()) return Fail(started);

  std::atomic<int> signaled{0};
  std::thread signal_waiter([&handled, &signaled, &server] {
    int sig = 0;
    if (sigwait(&handled, &sig) != 0) return;
    if (sig == SIGUSR1) return;
    signaled.store(sig);
    server.Shutdown();
  });

  const ClusterEngine::ClusterStats stats = cluster.value()->Stats();
  std::printf("pis_router listening on port %d\n", server.port());
  std::printf("routing %d shards over %zu replica endpoints (%d live graphs, "
              "sigma %.2f)\n",
              stats.num_shards, stats.endpoints.size(), stats.live, sigma);
  std::fflush(stdout);

  server.Wait();
  if (signaled.load() == 0) kill(getpid(), SIGUSR1);
  signal_waiter.join();
  if (int sig = signaled.load()) {
    std::printf("received %s, shutting down gracefully\n", strsignal(sig));
  }
  cluster.value()->StopHealthThread();
  std::printf("served %llu requests over %llu connections\n",
              static_cast<unsigned long long>(server.requests_served()),
              static_cast<unsigned long long>(server.connections_served()));
  std::printf("pis_router shut down cleanly\n");
  return 0;
}
