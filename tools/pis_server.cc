// pis_server: TCP serving front end over the sharded PIS engine.
//
//   pis_server --db db.txt --index sharded_dir [--port P] [--workers N]
//              [--sigma S] [--compact_dead_ratio R] [--compact_interval_ms M]
//              [--save_on_exit]
//   pis_server --db db.txt --shards 4 [--max_fragment_edges K]
//              [--min_support F] [--gamma G] [--distance mutation|linear] ...
//
// With --index, a sharded index directory (pis_cli build --shards > 1) is
// loaded and served; the db file must be the id-aligned database. Without
// it, the index is mined and built in memory at startup (the pis_cli build
// pipeline) — convenient for demos and the CI smoke test.
//
// The server speaks the newline-delimited JSON protocol documented in
// src/server/pis_server.h on the bound port (loopback only; --port 0 picks
// an ephemeral port). The line "pis_server listening on port <P>" goes to
// stdout once serving, so scripts can wait for readiness and learn the
// port. A {"op":"shutdown"} request stops the server; with --save_on_exit
// the mutated index (and db file) are saved back before exit.
//
// When --compact_dead_ratio > 0 (or the loaded manifest carries a policy),
// the background compactor scans every --compact_interval_ms and rewrites
// shards past the threshold via copy-on-write swaps — queries keep
// answering throughout.
#include <cstdio>
#include <filesystem>
#include <string>

#include "pis.h"
#include "server/pis_server.h"
#include "util/flags.h"

using namespace pis;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// The pis_cli build pipeline (shared via mining/pipeline.h so the two
/// binaries cannot drift), producing a sharded index in memory.
Result<ShardedFragmentIndex> BuildIndex(const GraphDatabase& db, int shards,
                                        int max_fragment_edges,
                                        double min_support, double gamma,
                                        const std::string& distance,
                                        int threads) {
  PIS_ASSIGN_OR_RETURN(
      std::vector<Graph> features,
      MineDiscriminativeFeatures(db, max_fragment_edges, min_support, gamma));
  FragmentIndexOptions options;
  options.max_fragment_edges = max_fragment_edges;
  options.num_threads = threads <= 0 ? HardwareThreads() : threads;
  PIS_ASSIGN_OR_RETURN(options.spec, DistanceSpecFromName(distance));
  return ShardedFragmentIndex::Build(db, features, options, shards);
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path;
  std::string index_path;
  int port = 4871;
  int workers = 4;
  double sigma = 2.0;
  int shards = 4;
  int max_fragment_edges = 4;
  double min_support = 0.05;
  double gamma = 1.0;
  std::string distance = "mutation";
  int threads = 0;
  double compact_dead_ratio = 0.0;
  int compact_interval_ms = 2000;
  bool save_on_exit = false;

  FlagSet flags;
  flags.AddString("db", &db_path, "database path (native text format)");
  flags.AddString("index", &index_path,
                  "sharded index directory (omit to build at startup)");
  flags.AddInt("port", &port, "TCP port (0 = ephemeral)");
  flags.AddInt("workers", &workers, "concurrent connections served");
  flags.AddDouble("sigma", &sigma, "default max superimposed distance");
  flags.AddInt("shards", &shards, "shard count when building at startup");
  flags.AddInt("max_fragment_edges", &max_fragment_edges,
               "max indexed fragment size when building at startup");
  flags.AddDouble("min_support", &min_support,
                  "relative feature min support when building at startup");
  flags.AddDouble("gamma", &gamma,
                  "gIndex discriminative ratio when building at startup");
  flags.AddString("distance", &distance, "mutation | linear");
  flags.AddInt("threads", &threads, "index build threads (0 = all hardware)");
  flags.AddDouble("compact_dead_ratio", &compact_dead_ratio,
                  "background compaction threshold (0 = use the manifest's "
                  "persisted policy, if any)");
  flags.AddInt("compact_interval_ms", &compact_interval_ms,
               "background compaction scan interval");
  flags.AddBool("save_on_exit", &save_on_exit,
                "save the mutated index (and db file) back on shutdown "
                "(requires --index)");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) return Fail(st);
  if (db_path.empty()) {
    return Fail(Status::InvalidArgument("--db is required"));
  }
  if (save_on_exit && index_path.empty()) {
    return Fail(Status::InvalidArgument("--save_on_exit requires --index"));
  }

  auto db = ReadGraphDatabaseFile(db_path);
  if (!db.ok()) return Fail(db.status());

  Result<ShardedFragmentIndex> index = Status::Internal("index not loaded");
  if (!index_path.empty()) {
    if (!std::filesystem::is_directory(index_path)) {
      return Fail(Status::InvalidArgument(
          "--index must name a sharded index directory (pis_cli build "
          "--shards > 1)"));
    }
    index = ShardedFragmentIndex::LoadDir(index_path);
  } else {
    index = BuildIndex(db.value(), shards, max_fragment_edges, min_support,
                       gamma, distance, threads);
  }
  if (!index.ok()) return Fail(index.status());
  if (index.value().db_size() != db.value().size()) {
    return Fail(Status::InvalidArgument(
        "index covers " + std::to_string(index.value().db_size()) +
        " graphs but --db holds " + std::to_string(db.value().size())));
  }

  PisOptions options;
  options.sigma = sigma;
  options.compact_dead_ratio = compact_dead_ratio;
  EngineHost host(std::move(db.value()), index.MoveValue(), options);
  if (host.compact_dead_ratio() > 0) {
    Status started = host.StartAutoCompaction(
        std::chrono::milliseconds(compact_interval_ms));
    if (!started.ok()) return Fail(started);
    std::fprintf(stderr,
                 "background compaction: dead ratio %.2f every %d ms\n",
                 host.compact_dead_ratio(), compact_interval_ms);
  }

  PisServerOptions server_options;
  server_options.port = port;
  server_options.num_workers = workers;
  PisServer server(&host, server_options);
  Status started = server.Start();
  if (!started.ok()) return Fail(started);
  EngineHost::HostStats stats = host.Stats();
  std::printf("pis_server listening on port %d\n", server.port());
  std::printf("serving %d live graphs over %d shards (sigma %.2f, %d workers)\n",
              stats.live, stats.num_shards, sigma, workers);
  std::fflush(stdout);

  server.Wait();
  host.StopAutoCompaction();
  std::printf("served %llu requests over %llu connections\n",
              static_cast<unsigned long long>(server.requests_served()),
              static_cast<unsigned long long>(server.connections_served()));
  if (save_on_exit) {
    Status saved = host.Save(index_path, db_path);
    if (!saved.ok()) return Fail(saved);
    std::printf("saved index to %s and db to %s\n", index_path.c_str(),
                db_path.c_str());
  }
  std::printf("pis_server shut down cleanly\n");
  return 0;
}
