// pis_server: TCP serving front end over the sharded PIS engine.
//
//   pis_server --db db.txt --index sharded_dir [--port P] [--workers N]
//              [--sigma S] [--sketch] [--compact_dead_ratio R]
//              [--compact_interval_ms M] [--wal_dir DIR]
//              [--checkpoint_interval_ms C] [--save_on_exit]
//              [--shards_owned 0,2,5]
//              [--slow_query_ms T] [--slow_query_log PATH]
//   pis_server --db db.txt --shards 4 [--max_fragment_edges K]
//              [--min_support F] [--gamma G] [--distance mutation|linear] ...
//
// With --index, a sharded index directory (pis_cli build --shards > 1) is
// loaded and served; the db file must be the id-aligned database. Without
// it, the index is mined and built in memory at startup (the pis_cli build
// pipeline) — convenient for demos and the CI smoke test.
//
// With --wal_dir, writes are durable: every acknowledged add/remove is in
// the write-ahead log (fsynced) before the reply goes out, and startup
// replays the log over the loaded snapshot — so kill -9 loses nothing that
// was acked. --checkpoint_interval_ms > 0 additionally persists a fresh
// snapshot (and truncates the log) on that cadence from the maintenance
// thread; either way a checkpoint runs on clean shutdown. If a previous
// run crashed mid-checkpoint-swap, the `<index>.stale` fallback directory
// is restored automatically before replay. Requires --index.
//
// The server speaks the newline-delimited JSON protocol documented in
// src/server/pis_server.h on the bound port (loopback only; --port 0 picks
// an ephemeral port). The line "pis_server listening on port <P>" goes to
// stdout once serving, so scripts can wait for readiness and learn the
// port. A {"op":"shutdown"} request — or SIGTERM/SIGINT — stops the server
// gracefully; with --save_on_exit (or --wal_dir) the mutated index and db
// are persisted before exit.
//
// When --compact_dead_ratio > 0 (or the loaded manifest carries a policy),
// the background maintenance thread scans every --compact_interval_ms and
// rewrites shards past the threshold via copy-on-write swaps — queries keep
// answering throughout.
//
// Observability (docs/observability.md): the {"op":"metrics"} request
// renders the process-global registry as Prometheus text; with
// --slow_query_ms > 0, any query slower than that dumps its span tree as
// one JSON line to --slow_query_log (stderr when the path is empty).
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "pis.h"
#include "server/pis_server.h"
#include "server/wal.h"
#include "util/flags.h"

using namespace pis;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// The pis_cli build pipeline (shared via mining/pipeline.h so the two
/// binaries cannot drift), producing a sharded index in memory.
Result<ShardedFragmentIndex> BuildIndex(const GraphDatabase& db, int shards,
                                        int max_fragment_edges,
                                        double min_support, double gamma,
                                        const std::string& distance,
                                        int threads) {
  PIS_ASSIGN_OR_RETURN(
      std::vector<Graph> features,
      MineDiscriminativeFeatures(db, max_fragment_edges, min_support, gamma));
  FragmentIndexOptions options;
  options.max_fragment_edges = max_fragment_edges;
  options.num_threads = threads <= 0 ? HardwareThreads() : threads;
  PIS_ASSIGN_OR_RETURN(options.spec, DistanceSpecFromName(distance));
  return ShardedFragmentIndex::Build(db, features, options, shards);
}

/// "--shards_owned 0,2,5" -> {0, 2, 5}. Empty input means all shards.
Result<std::vector<int>> ParseShardList(const std::string& text) {
  std::vector<int> shards;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    pos = comma + 1;
    char* end = nullptr;
    const long value = std::strtol(token.c_str(), &end, 10);
    if (token.empty() || end == nullptr || *end != '\0' || value < 0 ||
        value > 1 << 20) {
      return Status::InvalidArgument(
          "--shards_owned must be a comma-separated list of shard ids, got "
          "\"" +
          text + "\"");
    }
    shards.push_back(static_cast<int>(value));
  }
  return shards;
}

/// A crash between a checkpoint's two directory renames can leave the index
/// as `<dir>.stale` (the previous generation, still fully covered by the
/// un-truncated WAL). Restore it so LoadDir + replay see a complete state.
Status RestoreStaleIndexIfNeeded(const std::string& index_path) {
  const std::string stale = index_path + ".stale";
  if (std::filesystem::is_directory(index_path) ||
      !std::filesystem::is_directory(stale)) {
    return Status::OK();
  }
  std::fprintf(stderr,
               "recovering index from %s (previous run crashed mid-"
               "checkpoint; WAL replay will catch it up)\n",
               stale.c_str());
  std::error_code ec;
  std::filesystem::rename(stale, index_path, ec);
  if (ec) {
    return Status::IOError("cannot restore " + stale + " to " + index_path +
                           ": " + ec.message());
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path;
  std::string index_path;
  std::string wal_dir;
  int port = 4871;
  int workers = 4;
  double sigma = 2.0;
  int shards = 4;
  int max_fragment_edges = 4;
  double min_support = 0.05;
  double gamma = 1.0;
  std::string distance = "mutation";
  int threads = 0;
  double compact_dead_ratio = 0.0;
  int compact_interval_ms = 2000;
  int checkpoint_interval_ms = 0;
  bool save_on_exit = false;
  bool sketch = false;
  std::string shards_owned_flag;
  double slow_query_ms = 0;
  std::string slow_query_log_path;

  FlagSet flags;
  flags.AddString("db", &db_path, "database path (native text format)");
  flags.AddString("index", &index_path,
                  "sharded index directory (omit to build at startup)");
  flags.AddString("wal_dir", &wal_dir,
                  "write-ahead log directory: fsync every acked write and "
                  "replay it on startup (requires --index)");
  flags.AddInt("port", &port, "TCP port (0 = ephemeral)");
  flags.AddInt("workers", &workers, "concurrent connections served");
  flags.AddDouble("sigma", &sigma, "default max superimposed distance");
  flags.AddInt("shards", &shards, "shard count when building at startup");
  flags.AddInt("max_fragment_edges", &max_fragment_edges,
               "max indexed fragment size when building at startup");
  flags.AddDouble("min_support", &min_support,
                  "relative feature min support when building at startup");
  flags.AddDouble("gamma", &gamma,
                  "gIndex discriminative ratio when building at startup");
  flags.AddString("distance", &distance, "mutation | linear");
  flags.AddInt("threads", &threads, "index build threads (0 = all hardware)");
  flags.AddDouble("compact_dead_ratio", &compact_dead_ratio,
                  "background compaction threshold (0 = use the manifest's "
                  "persisted policy, if any)");
  flags.AddInt("compact_interval_ms", &compact_interval_ms,
               "background compaction scan interval");
  flags.AddInt("checkpoint_interval_ms", &checkpoint_interval_ms,
               "periodic snapshot-save + WAL-truncate cadence (0 = only on "
               "shutdown; requires --wal_dir)");
  flags.AddBool("save_on_exit", &save_on_exit,
                "save the mutated index (and db file) back on shutdown "
                "(requires --index; implied by --wal_dir)");
  flags.AddBool("sketch", &sketch,
                "enable the superimposed-sketch prefilter for every query "
                "(results are identical, only filter work changes)");
  flags.AddString("shards_owned", &shards_owned_flag,
                  "comma-separated shard ids this replica serves for the "
                  "cluster-fabric ops (empty = all; see pis_router)");
  flags.AddDouble("slow_query_ms", &slow_query_ms,
                  "log any query slower than this many milliseconds as a "
                  "single-line JSON span tree (0 = disabled)");
  flags.AddString("slow_query_log", &slow_query_log_path,
                  "slow-query log file (appended; empty = stderr)");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) return Fail(st);
  if (db_path.empty()) {
    return Fail(Status::InvalidArgument("--db is required"));
  }
  if (save_on_exit && index_path.empty()) {
    return Fail(Status::InvalidArgument("--save_on_exit requires --index"));
  }
  if (!wal_dir.empty() && index_path.empty()) {
    return Fail(Status::InvalidArgument(
        "--wal_dir requires --index (checkpoints need a directory to land "
        "in; an index built at startup has none)"));
  }
  if (checkpoint_interval_ms > 0 && wal_dir.empty()) {
    return Fail(Status::InvalidArgument(
        "--checkpoint_interval_ms requires --wal_dir"));
  }

  // Route SIGINT/SIGTERM through a dedicated sigwait thread instead of an
  // async handler: the graceful path (server.Shutdown() + checkpoint) is
  // nowhere near async-signal-safe. Block the signals before any thread
  // exists so every thread inherits the mask; SIGUSR1 is how the clean-
  // shutdown path unblocks the waiter.
  sigset_t handled;
  sigemptyset(&handled);
  sigaddset(&handled, SIGINT);
  sigaddset(&handled, SIGTERM);
  sigaddset(&handled, SIGUSR1);
  pthread_sigmask(SIG_BLOCK, &handled, nullptr);

  auto db = ReadGraphDatabaseFile(db_path);
  if (!db.ok()) return Fail(db.status());

  Result<ShardedFragmentIndex> index = Status::Internal("index not loaded");
  if (!index_path.empty()) {
    Status restored = RestoreStaleIndexIfNeeded(index_path);
    if (!restored.ok()) return Fail(restored);
    if (!std::filesystem::is_directory(index_path)) {
      return Fail(Status::InvalidArgument(
          "--index must name a sharded index directory (pis_cli build "
          "--shards > 1)"));
    }
    index = ShardedFragmentIndex::LoadDir(index_path);
  } else {
    index = BuildIndex(db.value(), shards, max_fragment_edges, min_support,
                       gamma, distance, threads);
  }
  if (!index.ok()) return Fail(index.status());

  std::unique_ptr<WriteAheadLog> wal;
  if (!wal_dir.empty()) {
    Result<WriteAheadLog> opened = WriteAheadLog::Open(wal_dir);
    if (!opened.ok()) return Fail(opened.status());
    wal = std::make_unique<WriteAheadLog>(opened.MoveValue());
    if (!wal->recovered().empty()) {
      Status replayed = wal->Replay(&db.value(), &index.value());
      if (!replayed.ok()) return Fail(replayed);
      std::fprintf(stderr, "replayed %zu WAL record(s) over the snapshot\n",
                   wal->recovered().size());
    }
  }
  if (index.value().db_size() != db.value().size()) {
    return Fail(Status::InvalidArgument(
        "index covers " + std::to_string(index.value().db_size()) +
        " graphs but --db holds " + std::to_string(db.value().size())));
  }

  PisOptions options;
  options.sigma = sigma;
  options.sketch_enabled = sketch;
  options.compact_dead_ratio = compact_dead_ratio;
  EngineHost host(std::move(db.value()), index.MoveValue(), options);
  if (wal != nullptr) {
    Status attached = host.AttachWal(std::move(wal));
    if (!attached.ok()) return Fail(attached);
    EngineHost::CheckpointConfig ckpt;
    ckpt.index_dir = index_path;
    ckpt.db_path = db_path;
    ckpt.interval = std::chrono::milliseconds(checkpoint_interval_ms);
    Status enabled = host.EnableCheckpoints(ckpt);
    if (!enabled.ok()) return Fail(enabled);
  }
  const bool periodic_checkpoints =
      wal != nullptr && checkpoint_interval_ms > 0;
  if (host.compact_dead_ratio() > 0 || periodic_checkpoints) {
    Status started = host.StartAutoCompaction(
        std::chrono::milliseconds(compact_interval_ms));
    if (!started.ok()) return Fail(started);
    if (host.compact_dead_ratio() > 0) {
      std::fprintf(stderr,
                   "background compaction: dead ratio %.2f every %d ms\n",
                   host.compact_dead_ratio(), compact_interval_ms);
    }
    if (periodic_checkpoints) {
      std::fprintf(stderr, "periodic checkpoints every %d ms\n",
                   checkpoint_interval_ms);
    }
  }

  // The process-global registry: the host's engine/WAL metrics and the
  // server's per-op request metrics land in one exposition.
  host.EnableMetrics(&MetricsRegistry::Global());
  SlowQueryLog slow_log(slow_query_log_path, slow_query_ms);

  PisServerOptions server_options;
  server_options.port = port;
  server_options.num_workers = workers;
  server_options.metrics = &MetricsRegistry::Global();
  server_options.slow_query_log = &slow_log;
  if (!shards_owned_flag.empty()) {
    Result<std::vector<int>> owned = ParseShardList(shards_owned_flag);
    if (!owned.ok()) return Fail(owned.status());
    for (int s : owned.value()) {
      if (s >= host.Stats().num_shards) {
        return Fail(Status::InvalidArgument(
            "--shards_owned names shard " + std::to_string(s) +
            " but the index has " + std::to_string(host.Stats().num_shards) +
            " shards"));
      }
    }
    server_options.shards_owned = owned.MoveValue();
  }
  PisServer server(&host, server_options);
  Status started = server.Start();
  if (!started.ok()) return Fail(started);

  // `signaled` is set BEFORE Shutdown() so the main thread can distinguish
  // "a signal stopped us" (the waiter is already exiting — don't poke it)
  // from a protocol-driven shutdown (wake the waiter with SIGUSR1).
  std::atomic<int> signaled{0};
  std::thread signal_waiter([&handled, &signaled, &server] {
    int sig = 0;
    if (sigwait(&handled, &sig) != 0) return;
    if (sig == SIGUSR1) return;  // clean protocol shutdown already happened
    signaled.store(sig);
    server.Shutdown();
  });

  EngineHost::HostStats stats = host.Stats();
  std::printf("pis_server listening on port %d\n", server.port());
  std::printf("serving %d live graphs over %d shards (sigma %.2f, %d workers)%s\n",
              stats.live, stats.num_shards, sigma, workers,
              host.wal_attached() ? ", durable writes on" : "");
  std::fflush(stdout);

  server.Wait();
  if (signaled.load() == 0) {
    // Shutdown came through the protocol; release the signal waiter.
    kill(getpid(), SIGUSR1);
  }
  signal_waiter.join();
  if (int sig = signaled.load()) {
    std::printf("received %s, shutting down gracefully\n", strsignal(sig));
  }
  host.StopAutoCompaction();
  std::printf("served %llu requests over %llu connections\n",
              static_cast<unsigned long long>(server.requests_served()),
              static_cast<unsigned long long>(server.connections_served()));
  if (host.wal_attached()) {
    Status saved = host.Checkpoint();
    if (!saved.ok()) return Fail(saved);
    std::printf("checkpointed index to %s and db to %s\n", index_path.c_str(),
                db_path.c_str());
  } else if (save_on_exit) {
    Status saved = host.Save(index_path, db_path);
    if (!saved.ok()) return Fail(saved);
    std::printf("saved index to %s and db to %s\n", index_path.c_str(),
                db_path.c_str());
  }
  std::printf("pis_server shut down cleanly\n");
  return 0;
}
