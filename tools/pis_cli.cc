// pis_cli: command-line front end for the PIS library.
//
//   pis_cli generate  --out db.txt [--count N] [--seed S]
//   pis_cli convert   --sdf file.sdf --out db.txt [--max N]
//   pis_cli build     --db db.txt --out index.bin [--max_fragment_edges K]
//                     [--min_support F] [--gamma G] [--distance mutation|linear]
//                     [--shards S] [--threads N]
//                     [--sketch_bits B] [--sketch_hashes H]
//   pis_cli stats     --index index.bin [--json]
//   pis_cli query     --db db.txt --index index.bin --query query.txt
//                     [--sigma S] [--engine pis|topo|naive] [--sketch]
//                     [--batch] [--threads N]
//   pis_cli topk      --db db.txt --index index.bin --query query.txt [--k K]
//   pis_cli add       --db db.txt --index index.bin --graphs new.txt
//   pis_cli remove    --index index.bin --ids 3,17,42
//                     [--compact_dead_ratio R]
//   pis_cli compact   --index index.bin [--db db.txt]
//                     [--min_dead_ratio R] [--rebalance]
//
// With --shards > 1, build writes a sharded index directory (manifest plus
// one file per shard) instead of a single file; stats, query, add, remove,
// and compact detect the directory and use the sharded index transparently.
//
// `add` indexes every graph in --graphs incrementally (no rebuild), appends
// them to the --db file so ids stay aligned, and saves the index in place.
// `remove` tombstones the given ids in the index (the db file keeps its
// records; removed ids simply stop matching queries); with
// --compact_dead_ratio, any sharded shard whose dead fraction crosses the
// threshold is compacted in the same run. `compact` reclaims tombstoned
// postings: on a sharded directory it rewrites the affected shards in place
// (global ids stay stable, the db file is untouched; --rebalance
// additionally migrates graphs off overloaded shards and needs --db); on a
// single-file index it re-densifies ids, so --db is required and the db
// file is rewritten without the removed graphs.
//
// Graph files use the native text format (see src/graph/io.h); the query
// file holds a single record, or any number of records with --batch.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "core/topk.h"
#include "pis.h"
#include "util/flags.h"
#include "util/fs_util.h"
#include "util/string_util.h"

using namespace pis;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int FailUsage() {
  std::fprintf(
      stderr,
      "usage: pis_cli "
      "<generate|convert|build|stats|query|topk|add|remove|compact> "
      "[flags]\nRun a subcommand with --help for its flags.\n");
  return 2;
}

int CmdGenerate(int argc, char** argv) {
  std::string out;
  int count = 1000;
  int64_t seed = 42;
  FlagSet flags;
  flags.AddString("out", &out, "output database path (native text format)");
  flags.AddInt("count", &count, "number of molecules");
  flags.AddInt64("seed", &seed, "generator seed");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) return Fail(st);
  if (out.empty()) return Fail(Status::InvalidArgument("--out is required"));
  MoleculeGeneratorOptions options;
  options.seed = static_cast<uint64_t>(seed);
  MoleculeGenerator gen(options);
  GraphDatabase db = gen.Generate(count);
  Status written = WriteGraphDatabaseFile(db, out);
  if (!written.ok()) return Fail(written);
  std::printf("wrote %d graphs to %s (avg %.1f vertices / %.1f edges)\n",
              db.size(), out.c_str(), db.AverageVertices(), db.AverageEdges());
  return 0;
}

int CmdConvert(int argc, char** argv) {
  std::string sdf;
  std::string out;
  int max = 0;
  FlagSet flags;
  flags.AddString("sdf", &sdf, "input SDF/MOL file");
  flags.AddString("out", &out, "output database path");
  flags.AddInt("max", &max, "max molecules (0 = all)");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) return Fail(st);
  if (sdf.empty() || out.empty()) {
    return Fail(Status::InvalidArgument("--sdf and --out are required"));
  }
  ChemicalVocabulary vocab = MakeDefaultChemicalVocabulary();
  SdfOptions options;
  options.max_molecules = max;
  options.require_connected = true;
  auto db = ReadSdfFile(sdf, &vocab, options);
  if (!db.ok()) return Fail(db.status());
  Status written = WriteGraphDatabaseFile(db.value(), out);
  if (!written.ok()) return Fail(written);
  std::printf("converted %d molecules from %s to %s\n", db.value().size(),
              sdf.c_str(), out.c_str());
  return 0;
}

Result<GraphDatabase> LoadDb(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("--db is required");
  return ReadGraphDatabaseFile(path);
}

int CmdBuild(int argc, char** argv) {
  std::string db_path;
  std::string out;
  int max_fragment_edges = 6;
  double min_support = 0.01;
  double gamma = 1.0;
  std::string distance = "mutation";
  int shards = 1;
  int threads = 1;
  int sketch_bits = GraphSketch::kDefaultBits;
  int sketch_hashes = GraphSketch::kDefaultHashes;
  FlagSet flags;
  flags.AddString("db", &db_path, "database path");
  flags.AddString("out", &out, "output index path");
  flags.AddInt("max_fragment_edges", &max_fragment_edges, "max indexed size");
  flags.AddDouble("min_support", &min_support, "relative feature min support");
  flags.AddDouble("gamma", &gamma, "gIndex discriminative ratio");
  flags.AddString("distance", &distance, "mutation | linear");
  flags.AddInt("shards", &shards,
               "shard count; > 1 writes a sharded index directory");
  flags.AddInt("threads", &threads, "index build threads (0 = all hardware)");
  flags.AddInt("sketch_bits", &sketch_bits,
               "sketch prefilter bits per graph (multiple of 64)");
  flags.AddInt("sketch_hashes", &sketch_hashes,
               "sketch prefilter hash functions per class");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) return Fail(st);
  if (out.empty()) return Fail(Status::InvalidArgument("--out is required"));
  auto db = LoadDb(db_path);
  if (!db.ok()) return Fail(db.status());

  auto features = MineDiscriminativeFeatures(db.value(), max_fragment_edges,
                                             min_support, gamma);
  if (!features.ok()) return Fail(features.status());

  FragmentIndexOptions options;
  options.max_fragment_edges = max_fragment_edges;
  options.num_threads = threads <= 0 ? HardwareThreads() : threads;
  auto spec = DistanceSpecFromName(distance);
  if (!spec.ok()) return Fail(spec.status());
  options.spec = spec.value();
  options.sketch_bits = sketch_bits;
  options.sketch_hashes = sketch_hashes;
  if (shards > 1) {
    auto index =
        ShardedFragmentIndex::Build(db.value(), features.value(), options, shards);
    if (!index.ok()) return Fail(index.status());
    Status saved = index.value().SaveDir(out);
    if (!saved.ok()) return Fail(saved);
    size_t occurrences = 0;
    for (int s = 0; s < index.value().num_shards(); ++s) {
      occurrences += index.value().shard(s).stats().num_fragment_occurrences;
    }
    std::printf(
        "built sharded index: %d shards, %d classes, %zu fragments in "
        "%.2fs -> %s/\n",
        index.value().num_shards(), index.value().num_classes(), occurrences,
        index.value().build_seconds(), out.c_str());
    return 0;
  }
  auto index = FragmentIndex::Build(db.value(), features.value(), options);
  if (!index.ok()) return Fail(index.status());
  Status saved = index.value().SaveFile(out);
  if (!saved.ok()) return Fail(saved);
  std::printf("built index: %d classes over %zu fragments in %.2fs -> %s\n",
              index.value().num_classes(),
              index.value().stats().num_fragment_occurrences,
              index.value().stats().build_seconds, out.c_str());
  return 0;
}

int CmdStats(int argc, char** argv) {
  std::string index_path;
  bool json = false;
  FlagSet flags;
  flags.AddString("index", &index_path, "index path");
  flags.AddBool("json", &json,
                "emit one machine-readable JSON object instead of text");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) return Fail(st);
  if (std::filesystem::is_directory(index_path)) {
    auto sharded = ShardedFragmentIndex::LoadDir(index_path);
    if (!sharded.ok()) return Fail(sharded.status());
    const ShardedFragmentIndex& idx = sharded.value();
    if (json) {
      // Same shape as the server's `stats` reply payload (minus the
      // host-only epoch/background counters), so operators and
      // bench_server scrape one format instead of text.
      JsonValue obj = JsonValue::Object();
      obj.Set("type", "sharded");
      obj.Set("db_slots", idx.db_size());
      obj.Set("live", idx.num_live());
      obj.Set("removed", static_cast<uint64_t>(idx.tombstones().size()));
      obj.Set("num_shards", idx.num_shards());
      obj.Set("classes", idx.num_classes());
      obj.Set("compaction_epoch", idx.compaction_epoch());
      obj.Set("compact_dead_ratio", idx.compact_dead_ratio());
      // Every shard is built with the same sketch shape; report shard 0's.
      obj.Set("sketch_bits", idx.shard(0).sketch().bits_per_graph());
      obj.Set("sketch_hashes", idx.shard(0).sketch().num_hashes());
      JsonValue shard_list = JsonValue::Array();
      for (int s = 0; s < idx.num_shards(); ++s) {
        const FragmentIndex& shard = idx.shard(s);
        JsonValue entry = JsonValue::Object();
        entry.Set("resident", idx.shard_size(s));
        entry.Set("live", shard.num_live());
        entry.Set("dead", static_cast<uint64_t>(shard.tombstones().size()));
        entry.Set("dead_ratio", shard.dead_ratio());
        entry.Set("fragment_occurrences",
                  static_cast<uint64_t>(
                      shard.stats().num_fragment_occurrences));
        shard_list.Push(std::move(entry));
      }
      obj.Set("shards", std::move(shard_list));
      std::printf("%s\n", obj.Serialize().c_str());
      return 0;
    }
    std::printf("sharded index over %d id slots (%d live, %zu removed)\n",
                idx.db_size(), idx.num_live(), idx.tombstones().size());
    std::printf("shards: %d, classes: %d, compaction epoch: %d\n",
                idx.num_shards(), idx.num_classes(), idx.compaction_epoch());
    std::printf("sketch: %d bits/graph, %d hashes\n",
                idx.shard(0).sketch().bits_per_graph(),
                idx.shard(0).sketch().num_hashes());
    if (idx.compact_dead_ratio() > 0) {
      std::printf("auto-compaction dead ratio: %.2f\n",
                  idx.compact_dead_ratio());
    }
    for (int s = 0; s < idx.num_shards(); ++s) {
      const FragmentIndex& shard = idx.shard(s);
      // Per-shard tombstone pressure is the signal operators compact on.
      std::printf(
          "  shard %d: %d resident (%d live, %zu dead, dead ratio %.2f), "
          "%zu fragment occurrences\n",
          s, idx.shard_size(s), shard.num_live(), shard.tombstones().size(),
          shard.dead_ratio(), shard.stats().num_fragment_occurrences);
    }
    return 0;
  }
  auto index = FragmentIndex::LoadFile(index_path);
  if (!index.ok()) return Fail(index.status());
  const FragmentIndex& idx = index.value();
  if (json) {
    JsonValue obj = JsonValue::Object();
    obj.Set("type", "flat");
    obj.Set("db_slots", idx.db_size());
    obj.Set("live", idx.num_live());
    obj.Set("removed", static_cast<uint64_t>(idx.tombstones().size()));
    obj.Set("dead_ratio", idx.dead_ratio());
    obj.Set("classes", idx.num_classes());
    obj.Set("compaction_epoch", static_cast<int>(idx.compaction_epoch()));
    obj.Set("distance", idx.options().spec.type == DistanceType::kMutation
                            ? "mutation"
                            : "linear");
    obj.Set("fragment_occurrences",
            static_cast<uint64_t>(idx.stats().num_fragment_occurrences));
    obj.Set("sketch_bits", idx.sketch().bits_per_graph());
    obj.Set("sketch_hashes", idx.sketch().num_hashes());
    std::printf("%s\n", obj.Serialize().c_str());
    return 0;
  }
  std::printf(
      "index over a %d-graph database (%d live, %zu dead, dead ratio %.2f, "
      "compaction epoch %u)\n",
      idx.db_size(), idx.num_live(), idx.tombstones().size(), idx.dead_ratio(),
      idx.compaction_epoch());
  std::printf("distance: %s\n",
              idx.options().spec.type == DistanceType::kMutation ? "mutation"
                                                                 : "linear");
  std::printf("fragment sizes: %d..%d edges\n", idx.options().min_fragment_edges,
              idx.options().max_fragment_edges);
  std::printf("classes: %d\n", idx.num_classes());
  std::printf("sketch: %d bits/graph, %d hashes\n",
              idx.sketch().bits_per_graph(), idx.sketch().num_hashes());
  std::printf("fragment occurrences: %zu\n",
              idx.stats().num_fragment_occurrences);
  std::printf("sequences: %zu\n", idx.stats().num_sequences_inserted);
  size_t max_fragments = 0;
  for (int c = 0; c < idx.num_classes(); ++c) {
    max_fragments = std::max(max_fragments, idx.class_at(c).num_fragments());
  }
  std::printf("largest class: %zu fragments\n", max_fragments);
  return 0;
}

Result<Graph> LoadQuery(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("--query is required");
  PIS_ASSIGN_OR_RETURN(GraphDatabase db, ReadGraphDatabaseFile(path));
  if (db.size() != 1) {
    return Status::InvalidArgument("query file must hold exactly one graph");
  }
  return db.at(0);
}

// Runs a whole query file as one SearchBatch and prints per-query answer
// lines plus aggregate stats. Returns a process exit code. `Engine` is
// PisEngine or ShardedPisEngine (same SearchBatch contract).
template <typename Engine>
int RunBatchQuery(const Engine& engine, const std::string& query_path,
                  int threads) {
  if (query_path.empty()) {
    return Fail(Status::InvalidArgument("--query is required"));
  }
  auto queries = ReadGraphDatabaseFile(query_path);
  if (!queries.ok()) return Fail(queries.status());
  BatchSearchResult batch =
      engine.SearchBatch(queries.value().graphs(), threads);
  for (size_t qi = 0; qi < batch.results.size(); ++qi) {
    const Result<SearchResult>& r = batch.results[qi];
    if (!r.ok()) {
      std::printf("query %zu: error: %s\n", qi, r.status().ToString().c_str());
      continue;
    }
    std::printf("query %zu: candidates: %zu, answers: %zu |", qi,
                r.value().stats.candidates_final, r.value().answers.size());
    for (int gid : r.value().answers) std::printf(" %d", gid);
    std::printf("\n");
  }
  const size_t workers =
      std::min<size_t>(threads <= 0 ? HardwareThreads() : threads,
                       batch.results.size());
  std::fprintf(stderr,
               "batch: %zu queries (%zu ok, %zu failed) in %.3fs with %zu "
               "threads\naggregate: %s\n",
               batch.results.size(), batch.succeeded, batch.failed,
               batch.wall_seconds, workers,
               batch.total_stats.ToString().c_str());
  return batch.failed == 0 ? 0 : 1;
}

int CmdQuery(int argc, char** argv) {
  std::string db_path;
  std::string index_path;
  std::string query_path;
  double sigma = 2;
  std::string engine = "pis";
  bool batch = false;
  bool sketch = false;
  int threads = 0;
  FlagSet flags;
  flags.AddString("db", &db_path, "database path");
  flags.AddString("index", &index_path, "index path");
  flags.AddString("query", &query_path, "query graph file (one record)");
  flags.AddDouble("sigma", &sigma, "max superimposed distance");
  flags.AddString("engine", &engine, "pis | topo | naive");
  flags.AddBool("sketch", &sketch,
                "enable the superimposed-sketch prefilter (pis engine; "
                "results are identical, only filter work changes)");
  flags.AddBool("batch", &batch, "treat --query as a multi-record batch");
  flags.AddInt("threads", &threads, "batch threads (0 = all hardware)");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) return Fail(st);
  if (engine != "pis" && engine != "topo" && engine != "naive") {
    return Fail(Status::InvalidArgument("unknown --engine " + engine));
  }
  if (batch && engine != "pis") {
    return Fail(Status::InvalidArgument("--batch requires --engine pis"));
  }
  auto db = LoadDb(db_path);
  if (!db.ok()) return Fail(db.status());
  // A directory index is a sharded index (build --shards > 1); only the
  // PIS engine understands it.
  const bool sharded =
      engine != "naive" && std::filesystem::is_directory(index_path);
  if (sharded && engine != "pis") {
    return Fail(Status::InvalidArgument(
        "sharded index directories require --engine pis"));
  }
  Result<FragmentIndex> index = Status::Internal("index not loaded");
  Result<ShardedFragmentIndex> sharded_index =
      Status::Internal("index not loaded");
  if (sharded) {
    sharded_index = ShardedFragmentIndex::LoadDir(index_path);
    if (!sharded_index.ok()) return Fail(sharded_index.status());
    if (sharded_index.value().db_size() != db.value().size()) {
      return Fail(Status::InvalidArgument(
          "index was built over a different database size"));
    }
  } else if (engine != "naive") {
    index = FragmentIndex::LoadFile(index_path);
    if (!index.ok()) return Fail(index.status());
    if (index.value().db_size() != db.value().size()) {
      return Fail(Status::InvalidArgument(
          "index was built over a different database size"));
    }
  }
  PisOptions options;
  options.sigma = sigma;
  options.sketch_enabled = sketch;
  if (batch) {
    if (sharded) {
      ShardedPisEngine pis_engine(&db.value(), &sharded_index.value(), options);
      return RunBatchQuery(pis_engine, query_path, threads);
    }
    PisEngine pis_engine(&db.value(), &index.value(), options);
    return RunBatchQuery(pis_engine, query_path, threads);
  }
  auto query = LoadQuery(query_path);
  if (!query.ok()) return Fail(query.status());

  Result<SearchResult> result = Status::Internal("no engine ran");
  if (engine == "naive") {
    result = NaiveSearch(db.value(), query.value(), DistanceSpec::EdgeMutation(),
                         sigma);
  } else if (engine == "pis" && sharded) {
    ShardedPisEngine pis_engine(&db.value(), &sharded_index.value(), options);
    result = pis_engine.Search(query.value());
  } else if (engine == "pis") {
    PisEngine pis_engine(&db.value(), &index.value(), options);
    result = pis_engine.Search(query.value());
  } else {
    TopoPruneEngine topo(&db.value(), &index.value());
    result = topo.Search(query.value(), sigma);
  }
  if (!result.ok()) return Fail(result.status());
  std::printf("candidates: %zu, answers: %zu\n",
              result.value().stats.candidates_final,
              result.value().answers.size());
  for (int gid : result.value().answers) std::printf("%d\n", gid);
  std::fprintf(stderr, "%s\n", result.value().stats.ToString().c_str());
  return 0;
}

int CmdTopK(int argc, char** argv) {
  std::string db_path;
  std::string index_path;
  std::string query_path;
  int k = 10;
  FlagSet flags;
  flags.AddString("db", &db_path, "database path");
  flags.AddString("index", &index_path, "index path");
  flags.AddString("query", &query_path, "query graph file (one record)");
  flags.AddInt("k", &k, "number of nearest graphs");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) return Fail(st);
  auto db = LoadDb(db_path);
  if (!db.ok()) return Fail(db.status());
  if (std::filesystem::is_directory(index_path)) {
    return Fail(Status::InvalidArgument(
        "topk does not support sharded index directories yet; build a "
        "single-file index (--shards 1)"));
  }
  auto index = FragmentIndex::LoadFile(index_path);
  if (!index.ok()) return Fail(index.status());
  auto query = LoadQuery(query_path);
  if (!query.ok()) return Fail(query.status());
  TopKOptions options;
  options.k = k;
  auto result = TopKSearch(db.value(), index.value(), query.value(), options);
  if (!result.ok()) return Fail(result.status());
  std::printf("top-%d (rounds=%d, final_sigma=%.2f, verifications=%zu):\n", k,
              result.value().rounds, result.value().final_sigma,
              result.value().verifications);
  for (const auto& [gid, d] : result.value().results) {
    std::printf("%d\t%.3f\n", gid, d);
  }
  return 0;
}

int CmdAdd(int argc, char** argv) {
  std::string db_path;
  std::string index_path;
  std::string graphs_path;
  FlagSet flags;
  flags.AddString("db", &db_path, "database path (rewritten with appends)");
  flags.AddString("index", &index_path, "index path (file or sharded dir)");
  flags.AddString("graphs", &graphs_path, "graphs to add (native text format)");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) return Fail(st);
  if (graphs_path.empty()) {
    return Fail(Status::InvalidArgument("--graphs is required"));
  }
  auto db = LoadDb(db_path);
  if (!db.ok()) return Fail(db.status());
  auto fresh = ReadGraphDatabaseFile(graphs_path);
  if (!fresh.ok()) return Fail(fresh.status());

  const bool sharded = std::filesystem::is_directory(index_path);
  Result<FragmentIndex> index = Status::Internal("index not loaded");
  Result<ShardedFragmentIndex> sharded_index =
      Status::Internal("index not loaded");
  int before = 0;
  if (sharded) {
    sharded_index = ShardedFragmentIndex::LoadDir(index_path);
    if (!sharded_index.ok()) return Fail(sharded_index.status());
    before = sharded_index.value().db_size();
  } else {
    index = FragmentIndex::LoadFile(index_path);
    if (!index.ok()) return Fail(index.status());
    before = index.value().db_size();
  }
  if (before != db.value().size()) {
    return Fail(Status::InvalidArgument(
        "index covers " + std::to_string(before) + " graphs but --db holds " +
        std::to_string(db.value().size())));
  }
  for (const Graph& g : fresh.value().graphs()) {
    Result<int> gid = sharded ? sharded_index.value().AddGraph(g)
                              : index.value().AddGraph(g);
    if (!gid.ok()) return Fail(gid.status());
    db.value().Add(g);
    std::printf("added graph %d\n", gid.value());
  }
  Status saved = sharded ? sharded_index.value().SaveDir(index_path)
                         : index.value().SaveFile(index_path);
  if (!saved.ok()) return Fail(saved);
  Status written = WriteGraphDatabaseFile(db.value(), db_path);
  if (!written.ok()) return Fail(written);
  std::printf("indexed %d graphs incrementally (database now %d)\n",
              fresh.value().size(), db.value().size());
  return 0;
}

int CmdRemove(int argc, char** argv) {
  std::string index_path;
  std::string ids;
  // -1 = flag not given: keep whatever policy the manifest persisted.
  // An explicit 0 clears the persisted policy; > 0 (re)arms it.
  double compact_dead_ratio = -1;
  FlagSet flags;
  flags.AddString("index", &index_path, "index path (file or sharded dir)");
  flags.AddString("ids", &ids, "comma-separated graph ids to remove");
  flags.AddDouble("compact_dead_ratio", &compact_dead_ratio,
                  "auto-compact a shard once its dead fraction reaches this "
                  "(sharded dirs only; 0 = clear the persisted policy, "
                  "-1 = keep it)");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) return Fail(st);
  if (ids.empty()) return Fail(Status::InvalidArgument("--ids is required"));
  std::vector<int> parsed;
  for (const std::string& token : Split(ids, ',')) {
    try {
      size_t used = 0;
      int id = std::stoi(token, &used);
      if (used != token.size()) throw std::invalid_argument(token);
      parsed.push_back(id);
    } catch (...) {
      return Fail(Status::InvalidArgument("bad graph id '" + token +
                                          "' in --ids"));
    }
  }

  const bool sharded = std::filesystem::is_directory(index_path);
  Result<FragmentIndex> index = Status::Internal("index not loaded");
  Result<ShardedFragmentIndex> sharded_index =
      Status::Internal("index not loaded");
  if (compact_dead_ratio > 1) {
    return Fail(
        Status::InvalidArgument("--compact_dead_ratio must be <= 1"));
  }
  if (sharded) {
    sharded_index = ShardedFragmentIndex::LoadDir(index_path);
    if (!sharded_index.ok()) return Fail(sharded_index.status());
    // Only an explicit flag overrides the policy the manifest persisted
    // (v4); the unset default must not erase a server's configured ratio
    // on the next save.
    if (compact_dead_ratio >= 0) {
      sharded_index.value().set_compact_dead_ratio(compact_dead_ratio);
    }
  } else {
    index = FragmentIndex::LoadFile(index_path);
    if (!index.ok()) return Fail(index.status());
  }
  const int epoch_before =
      sharded ? sharded_index.value().compaction_epoch() : 0;
  int removed = 0;
  for (int id : parsed) {
    Status status = sharded ? sharded_index.value().RemoveGraph(id)
                            : index.value().RemoveGraph(id);
    if (!status.ok()) {
      std::fprintf(stderr, "skip %d: %s\n", id, status.ToString().c_str());
      continue;
    }
    ++removed;
    std::printf("removed graph %d\n", id);
  }
  if (removed > 0) {
    // Nothing changed when every id was skipped; don't rewrite the index.
    Status saved = sharded ? sharded_index.value().SaveDir(index_path)
                           : index.value().SaveFile(index_path);
    if (!saved.ok()) return Fail(saved);
  }
  const int live = sharded ? sharded_index.value().num_live()
                           : index.value().num_live();
  std::printf("removed %d of %zu ids (%d live graphs remain)\n", removed,
              parsed.size(), live);
  if (sharded && sharded_index.value().compaction_epoch() > epoch_before) {
    // Epoch delta counts compaction runs, not distinct shards — one shard
    // can cross the threshold more than once in a single invocation.
    // The effective ratio may come from the flag or the persisted policy.
    std::printf("ran %d auto-compaction(s) past dead ratio %.2f\n",
                sharded_index.value().compaction_epoch() - epoch_before,
                sharded_index.value().compact_dead_ratio());
  }
  return removed == static_cast<int>(parsed.size()) ? 0 : 1;
}

int CmdCompact(int argc, char** argv) {
  std::string index_path;
  std::string db_path;
  double min_dead_ratio = 0.0;
  bool rebalance = false;
  FlagSet flags;
  flags.AddString("index", &index_path, "index path (file or sharded dir)");
  flags.AddString("db", &db_path,
                  "database path (required for single-file indexes, which "
                  "re-densify ids, and for --rebalance)");
  flags.AddDouble("min_dead_ratio", &min_dead_ratio,
                  "only compact shards at or above this dead fraction "
                  "(sharded dirs; 0 = every shard with tombstones)");
  flags.AddBool("rebalance", &rebalance,
                "also migrate graphs off overloaded shards (sharded dirs)");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) return Fail(st);
  if (index_path.empty()) {
    return Fail(Status::InvalidArgument("--index is required"));
  }
  const uintmax_t bytes_before = PathBytes(index_path);

  if (std::filesystem::is_directory(index_path)) {
    auto sharded = ShardedFragmentIndex::LoadDir(index_path);
    if (!sharded.ok()) return Fail(sharded.status());
    auto compacted = sharded.value().Compact(min_dead_ratio);
    if (!compacted.ok()) return Fail(compacted.status());
    int migrated = 0;
    if (rebalance) {
      auto db = LoadDb(db_path);
      if (!db.ok()) return Fail(db.status());
      // Rebalance itself validates the db/index alignment.
      auto moved = sharded.value().Rebalance(db.value());
      if (!moved.ok()) return Fail(moved.status());
      migrated = moved.value();
    }
    if (compacted.value() == 0 && migrated == 0) {
      // Nothing changed; don't rewrite a healthy on-disk index in place.
      std::printf("nothing to compact (%d live of %d slots)\n",
                  sharded.value().num_live(), sharded.value().db_size());
      return 0;
    }
    // Stage the rewrite beside the live directory and swap via renames, so
    // a crash or full disk mid-write can't strand a manifest that
    // disagrees with its shard files (LoadDir would reject the directory).
    const std::string staged = index_path + ".compact.tmp";
    const std::string retired = index_path + ".compact.old";
    std::error_code ec;
    std::filesystem::remove_all(staged, ec);
    std::filesystem::remove_all(retired, ec);
    Status saved = sharded.value().SaveDir(staged);
    if (!saved.ok()) return Fail(saved);
    std::filesystem::rename(index_path, retired, ec);
    if (!ec) std::filesystem::rename(staged, index_path, ec);
    if (ec) {
      return Fail(Status::IOError("compaction staged but rename failed: " +
                                  ec.message()));
    }
    std::filesystem::remove_all(retired, ec);
    std::printf(
        "compacted %d shard(s), migrated %d graph(s); %d live of %d slots; "
        "%ju -> %ju bytes on disk\n",
        compacted.value(), migrated, sharded.value().num_live(),
        sharded.value().db_size(), static_cast<uintmax_t>(bytes_before),
        static_cast<uintmax_t>(PathBytes(index_path)));
    return 0;
  }

  if (rebalance) {
    return Fail(Status::InvalidArgument(
        "--rebalance requires a sharded index directory"));
  }
  auto index = FragmentIndex::LoadFile(index_path);
  if (!index.ok()) return Fail(index.status());
  if (index.value().tombstones().empty()) {
    std::printf("nothing to compact (0 dead of %d slots)\n",
                index.value().db_size());
    return 0;
  }
  // Single-file compaction re-densifies graph ids, so the aligned database
  // must shed its removed records in the same pass or every later query
  // would mis-map ids.
  auto db = LoadDb(db_path);
  if (!db.ok()) return Fail(db.status());
  if (db.value().size() != index.value().db_size()) {
    return Fail(Status::InvalidArgument(
        "index covers " + std::to_string(index.value().db_size()) +
        " graphs but --db holds " + std::to_string(db.value().size())));
  }
  const std::vector<int> remap = index.value().Compact();
  GraphDatabase compacted;
  for (int gid = 0; gid < static_cast<int>(remap.size()); ++gid) {
    if (remap[gid] >= 0) compacted.Add(db.value().at(gid));
  }
  // The index and db must move together or their ids misalign forever (the
  // remap lives only in this process). Stage both next to their targets and
  // rename at the end, so any single failure leaves the old aligned pair —
  // or at worst a fully written new db with the old index, which the next
  // run's size check rejects loudly instead of serving wrong ids.
  const std::string index_tmp = index_path + ".compact.tmp";
  const std::string db_tmp = db_path + ".compact.tmp";
  Status saved = index.value().SaveFile(index_tmp);
  if (!saved.ok()) return Fail(saved);
  Status written = WriteGraphDatabaseFile(compacted, db_tmp);
  if (!written.ok()) return Fail(written);
  std::error_code rename_ec;
  std::filesystem::rename(db_tmp, db_path, rename_ec);
  if (!rename_ec) std::filesystem::rename(index_tmp, index_path, rename_ec);
  if (rename_ec) {
    return Fail(Status::IOError("compaction staged but rename failed: " +
                                rename_ec.message()));
  }
  std::printf(
      "compacted index: %d live graphs re-densified (ids changed!), db file "
      "rewritten; %ju -> %ju bytes on disk\n",
      index.value().db_size(), static_cast<uintmax_t>(bytes_before),
      static_cast<uintmax_t>(PathBytes(index_path)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return FailUsage();
  std::string cmd = argv[1];
  // Shift argv so subcommand flags parse from index 1.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  if (cmd == "generate") return CmdGenerate(sub_argc, sub_argv);
  if (cmd == "convert") return CmdConvert(sub_argc, sub_argv);
  if (cmd == "build") return CmdBuild(sub_argc, sub_argv);
  if (cmd == "stats") return CmdStats(sub_argc, sub_argv);
  if (cmd == "query") return CmdQuery(sub_argc, sub_argv);
  if (cmd == "topk") return CmdTopK(sub_argc, sub_argv);
  if (cmd == "add") return CmdAdd(sub_argc, sub_argv);
  if (cmd == "remove") return CmdRemove(sub_argc, sub_argv);
  if (cmd == "compact") return CmdCompact(sub_argc, sub_argv);
  return FailUsage();
}
