#!/usr/bin/env bash
# Project lint: mechanical rules that neither the compiler nor clang-tidy
# enforces, kept deliberately grep-simple so they run in milliseconds on
# every CI push and locally with no toolchain beyond POSIX + bash.
#
# Rules:
#   1. No naked standard-library lock primitives (std::mutex,
#      std::condition_variable, std::lock_guard, std::unique_lock,
#      std::scoped_lock, std::shared_mutex, std::recursive_mutex) outside
#      src/util/mutex.h. The thread-safety analysis only understands the
#      annotated pis::Mutex capability type; a raw mutex is a lock the
#      compiler cannot check.
#   2. No system(...) calls. A serving process that shells out is a command
#      injection surface; use the typed fs/socket utilities instead.
#   3. Every header under src/server/ must include
#      "util/thread_annotations.h" (directly or via "util/mutex.h"). The
#      serving layer is the concurrency core — its headers declare the lock
#      contracts, and the macros must be in scope for that to stay true.
#   4. NOLINT suppressions must name the check being silenced
#      ("// NOLINT(check-name)"), so every suppression is auditable. A bare
#      "// NOLINT" disables everything on the line forever.
#   5. No std::chrono::system_clock::now() outside src/util/. The wall
#      clock steps under NTP; every duration, timeout, and trace span must
#      come from util/timer.h (steady_clock / MonotonicNowNs), so that a
#      clock adjustment can never corrupt a measurement or a span tree.
#
# usage: lint.sh [file...]
#   With no arguments, lints the project tree (src/ tools/ bench/ examples/
#   tests/ scripts/). With arguments, lints exactly those files — which is
#   how the static_analysis suite feeds it the seeded-violation fixtures.
set -u

cd "$(dirname "$0")/.." || exit 2

fail=0
complain() {  # complain <file:line:text> <message>
  echo "lint: $2" >&2
  echo "  $1" >&2
  fail=1
}

if [ "$#" -gt 0 ]; then
  explicit=1
  files=("$@")
else
  explicit=0
  files=()
  while IFS= read -r f; do
    files+=("$f")
  done < <(find src tools bench examples tests scripts \
             \( -name '*.h' -o -name '*.cc' -o -name '*.cpp' \) | sort)
fi

for f in "${files[@]}"; do
  [ -f "$f" ] || { echo "lint: no such file: $f" >&2; fail=1; continue; }
  rel=${f#./}

  # Rule 1: naked lock primitives. The wrapper itself is always exempt; the
  # lint fixture that exists to violate this rule is exempt only from the
  # default tree scan — passing it explicitly (as the static_analysis
  # negative test does) must still fail.
  if [ "$explicit" -eq 1 ]; then
    rule1_exempt="src/util/mutex.h"
  else
    rule1_exempt="src/util/mutex.h tests/static_analysis/bad_naked_mutex.cc"
  fi
  case " $rule1_exempt " in
    *" $rel "*) ;;
    *)
      hits=$(grep -nE \
        'std::(mutex|condition_variable|lock_guard|unique_lock|scoped_lock|shared_mutex|recursive_mutex)' \
        "$f")
      if [ -n "$hits" ]; then
        complain "$rel: $hits" \
          "naked std::mutex-family primitive outside util/mutex.h — use pis::Mutex / pis::MutexLock / pis::CondVar"
      fi
      ;;
  esac

  # Rule 2: system(...). Match a call, not identifiers like ecosystem(.
  hits=$(grep -nE '(^|[^_[:alnum:]])system[[:space:]]*\(' "$f")
  if [ -n "$hits" ]; then
    complain "$rel: $hits" "system(...) call — shelling out is banned in this codebase"
  fi

  # Rule 3: server headers must see the annotation macros.
  case "$rel" in
    src/server/*.h)
      if ! grep -qE '#include "util/(thread_annotations|mutex)\.h"' "$f"; then
        complain "$rel" \
          "src/server header without util/thread_annotations.h (or util/mutex.h) — lock contracts must be declarable"
      fi
      ;;
  esac

  # Rule 4: NOLINT must name its check.
  hits=$(grep -nE '//[[:space:]]*NOLINT(NEXTLINE)?([^(A-Z]|$)' "$f")
  if [ -n "$hits" ]; then
    complain "$rel: $hits" \
      "bare NOLINT — name the suppressed check: // NOLINT(check-name)"
  fi

  # Rule 5: wall-clock reads outside src/util/. Same exemption scheme as
  # rule 1: the fixture only escapes the default tree scan.
  if [ "$explicit" -eq 1 ]; then
    rule5_exempt=""
  else
    rule5_exempt="tests/static_analysis/bad_wall_clock.cc"
  fi
  case "$rel" in
    src/util/*) ;;
    *)
      case " $rule5_exempt " in
        *" $rel "*) ;;
        *)
          hits=$(grep -nE 'std::chrono::system_clock::now[[:space:]]*\(' "$f")
          if [ -n "$hits" ]; then
            complain "$rel: $hits" \
              "system_clock::now() outside src/util — durations must use util/timer.h (steady clock)"
          fi
          ;;
      esac
      ;;
  esac
done

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: OK (${#files[@]} files)"
