#!/usr/bin/env bash
# clang-tidy driver: runs the curated .clang-tidy check set (which sets
# WarningsAsErrors: '*', so any finding is a failure) over the project
# using a CMake compile database.
#
# usage: run_clang_tidy.sh [--diff <base-ref>] [build-dir]
#
#   --diff <base-ref>  Tidy only the *.cc files changed since <base-ref>
#                      (plus any *.cc whose same-stem header changed).
#                      This is the PR fast lane CI uses: a full-tree run is
#                      the nightly/main gate, a diff run keeps PR feedback
#                      under the CI time budget.
#   build-dir          Directory containing compile_commands.json
#                      (default: build). Configured for you if missing —
#                      CMAKE_EXPORT_COMPILE_COMMANDS is always on in this
#                      project's CMakeLists.
set -euo pipefail

cd "$(dirname "$0")/.."

base_ref=""
if [ "${1:-}" = "--diff" ]; then
  base_ref="${2:?--diff needs a base ref}"
  shift 2
fi
build_dir="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found in PATH" >&2
  exit 2
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "run_clang_tidy: configuring ${build_dir} for a compile database..."
  cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
fi

# Collect the translation units to check. Only TUs that appear in the
# compile database are eligible (headers are covered via
# HeaderFilterRegex when any includer is checked).
mapfile -t all_tus < <(find src bench tools examples \
  \( -name '*.cc' -o -name '*.cpp' \) | sort)

if [ -n "${base_ref}" ]; then
  mapfile -t changed < <(git diff --name-only "${base_ref}"...HEAD -- \
    'src/**' 'bench/**' 'tools/**' 'examples/**' 2>/dev/null || true)
  tus=()
  for tu in "${all_tus[@]}"; do
    stem="${tu%.*}"
    for c in "${changed[@]:-}"; do
      # A changed header re-checks its same-stem TU; a changed TU checks
      # itself. (Cross-file header fan-out is the full run's job.)
      if [ "$c" = "$tu" ] || [ "$c" = "${stem}.h" ]; then
        tus+=("$tu")
        break
      fi
    done
  done
  if [ "${#tus[@]}" -eq 0 ]; then
    echo "run_clang_tidy: no changed translation units vs ${base_ref}; OK"
    exit 0
  fi
  echo "run_clang_tidy: ${#tus[@]} changed TU(s) vs ${base_ref}"
else
  tus=("${all_tus[@]}")
  echo "run_clang_tidy: full run over ${#tus[@]} TU(s)"
fi

jobs=$(nproc 2>/dev/null || echo 4)
fail=0
printf '%s\0' "${tus[@]}" |
  xargs -0 -P "${jobs}" -n 1 clang-tidy -p "${build_dir}" --quiet || fail=1

if [ "${fail}" -ne 0 ]; then
  echo "run_clang_tidy: FAILED" >&2
  exit 1
fi
echo "run_clang_tidy: OK"
