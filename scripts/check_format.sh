#!/usr/bin/env bash
# Formatting gate: clang-format --dry-run -Werror over the enforced file
# set.
#
# Scope: the tree predates the .clang-format config, so enforcement is
# incremental — the files below (the concurrency/static-analysis surface,
# reformatted when the config landed) are the contract today. Grow the
# list whenever a file is brought into conformance; never shrink it.
#
# usage: check_format.sh [--fix]
#   --fix  rewrite the enforced files in place instead of checking.
set -euo pipefail

cd "$(dirname "$0")/.."

ENFORCED=(
  src/util/mutex.h
  src/util/thread_annotations.h
  tests/static_analysis/bad_discarded_status.cc
  tests/static_analysis/bad_guarded_by.cc
  tests/static_analysis/bad_lock_exclusion.cc
  tests/static_analysis/bad_naked_mutex.cc
  tests/static_analysis/good_annotated.cc
)

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found in PATH" >&2
  exit 2
fi

if [ "${1:-}" = "--fix" ]; then
  clang-format -i --style=file "${ENFORCED[@]}"
  echo "check_format: reformatted ${#ENFORCED[@]} files"
  exit 0
fi

if clang-format --dry-run -Werror --style=file "${ENFORCED[@]}"; then
  echo "check_format: OK (${#ENFORCED[@]} files)"
else
  echo "check_format: FAILED — run scripts/check_format.sh --fix" >&2
  exit 1
fi
