#!/usr/bin/env python3
"""Compare a fresh bench_server JSON report against the checked-in baseline.

Usage:
    scripts/bench_regression_check.py BASELINE.json FRESH.json [--max-ratio R]

Both files are bench_server --json_out reports. The check fails (exit 1)
when:
  * either report has "ok" != true,
  * a phase present in the baseline is missing from the fresh run,
  * a phase completed zero queries in the fresh run, or
  * a phase's fresh p99 exceeds baseline p99 * R.

The ratio guard is deliberately loose (default 3.0): the baseline was
recorded on a different machine than the CI runner, so only
order-of-magnitude regressions — a lock held across a shard swap, a filter
gone accidentally quadratic — should trip it, not runner jitter. Tighten
--max-ratio when comparing runs from the same machine.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot read {path}: {e}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="checked-in bench_server JSON")
    parser.add_argument("fresh", help="freshly produced bench_server JSON")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=3.0,
        help="fail when fresh p99 > baseline p99 * this (default: 3.0)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    failures = []
    for name, report in (("baseline", baseline), ("fresh", fresh)):
        if report.get("ok") is not True:
            failures.append(f"{name} report has ok={report.get('ok')!r}")

    base_phases = baseline.get("phases", {})
    fresh_phases = fresh.get("phases", {})
    print(f"{'phase':<16} {'base p99':>10} {'fresh p99':>10} {'ratio':>7}  "
          f"limit {args.max_ratio:.2f}x")
    for phase, base in sorted(base_phases.items()):
        current = fresh_phases.get(phase)
        if current is None:
            failures.append(f"phase '{phase}' missing from the fresh run")
            continue
        if current.get("queries", 0) <= 0:
            failures.append(f"phase '{phase}' completed zero queries")
            continue
        base_p99 = base.get("p99_ms")
        fresh_p99 = current.get("p99_ms")
        if not base_p99 or fresh_p99 is None:
            failures.append(f"phase '{phase}' is missing p99_ms")
            continue
        ratio = fresh_p99 / base_p99
        verdict = "ok" if ratio <= args.max_ratio else "REGRESSION"
        print(f"{phase:<16} {base_p99:>10.3f} {fresh_p99:>10.3f} "
              f"{ratio:>6.2f}x  {verdict}")
        if ratio > args.max_ratio:
            failures.append(
                f"phase '{phase}' p99 regressed {ratio:.2f}x "
                f"({base_p99:.3f} ms -> {fresh_p99:.3f} ms)")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("all phases within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
