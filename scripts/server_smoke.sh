#!/usr/bin/env bash
# End-to-end smoke of the serving subsystem: build a sample DB + sharded
# index with pis_cli, start pis_server, drive every protocol op through
# pis_client, and require a clean shutdown. CI runs this against the
# freshly built binaries; locally:
#
#   scripts/server_smoke.sh ./build
set -euo pipefail

BIN="$(cd "${1:-./build}" && pwd)"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

echo "== prepare sample DB + sharded index"
"$BIN/pis_cli" generate --out db.txt --count 60 --seed 42
"$BIN/pis_cli" build --db db.txt --out sharded_dir --max_fragment_edges 4 \
  --min_support 0.08 --shards 4
# The first record of the DB is its own sigma-0 answer — a query with a
# known non-empty result.
awk '/^t /{n++} n<=1' db.txt > probe.txt
"$BIN/pis_cli" generate --out new.txt --count 2 --seed 7

echo "== machine-readable stats (pis_cli stats --json)"
"$BIN/pis_cli" stats --index sharded_dir --json | tee stats.json
grep -q '"type":"sharded"' stats.json
grep -q '"num_shards":4' stats.json

echo "== manifest v4 keeps the auto-compaction policy across plain removes"
cp -r sharded_dir policy_dir
"$BIN/pis_cli" remove --index policy_dir --ids 58 --compact_dead_ratio 0.3 \
  > /dev/null
"$BIN/pis_cli" remove --index policy_dir --ids 59 > /dev/null
"$BIN/pis_cli" stats --index policy_dir --json | tee policy.json
grep -q '"compact_dead_ratio":0.3' policy.json
rm -rf policy_dir

echo "== start pis_server (ephemeral port, background compaction on)"
"$BIN/pis_server" --db db.txt --index sharded_dir --port 0 \
  --compact_dead_ratio 0.2 --compact_interval_ms 200 > server.log 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on port" server.log && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat server.log; exit 1; }
  sleep 0.1
done
PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' server.log)"
echo "   port $PORT"

echo "== health"
"$BIN/pis_client" health --port "$PORT" | tee health.json
grep -q '"ok":true' health.json

echo "== query (graph 0 must answer itself)"
"$BIN/pis_client" query --port "$PORT" --query probe.txt | tee query.json
grep -q '"ok":true' query.json
grep -q '"answers":\[0[],]' query.json

echo "== traced query returns a span tree"
"$BIN/pis_client" query --port "$PORT" --query probe.txt --trace \
  > traced.json 2> trace.txt
grep -q '"trace"' traced.json
grep -q '"trace_id"' traced.json
grep -q '"name":"filter"' traced.json
grep -q '"name":"verify"' traced.json
grep -q "ms total" trace.txt        # the stderr pretty-print ran
grep -q "filter" trace.txt

echo "== add two graphs, remove one, query still serves"
"$BIN/pis_client" add --port "$PORT" --graphs new.txt | tee add.json
grep -q '"id":60' add.json
grep -q '"id":61' add.json
"$BIN/pis_client" remove --port "$PORT" --ids 60 | tee remove.json
grep -q '"ok":true' remove.json
"$BIN/pis_client" query --port "$PORT" --query probe.txt | grep -q '"ok":true'

echo "== compact (the removed graph's postings) and check stats"
"$BIN/pis_client" compact --port "$PORT" | tee compact.json
grep -q '"compacted":1' compact.json
"$BIN/pis_client" stats --port "$PORT" | tee server_stats.json
grep -q '"live":61' server_stats.json
grep -q '"removed":1' server_stats.json

echo "== metrics exposition reflects the load just driven"
"$BIN/pis_client" metrics --port "$PORT" | tee metrics.txt
grep -q '^# TYPE pis_server_requests_total counter' metrics.txt
grep -q '^# TYPE pis_server_request_seconds histogram' metrics.txt
grep -q '^# TYPE pis_queries_total counter' metrics.txt
grep -q '^# TYPE pis_query_stage_seconds histogram' metrics.txt
grep -q '^# TYPE pis_snapshot_epoch gauge' metrics.txt
# The queries above must have been counted (strictly positive values).
grep -E '^pis_queries_total [1-9]' metrics.txt > /dev/null
grep -E '^pis_server_requests_total\{op="query"\} [1-9]' metrics.txt > /dev/null
grep -E '^pis_query_stage_seconds_count\{stage="pass1"\} [1-9]' metrics.txt \
  > /dev/null
# The stats reply mirrors the registry as JSON.
grep -q '"pis_server_requests_total"' server_stats.json

echo "== protocol errors do not wedge the server"
if "$BIN/pis_client" remove --port "$PORT" --ids 99999 > bad.json; then
  echo "expected nonzero exit for a failed remove"; exit 1
fi
grep -q '"ok":false' bad.json
"$BIN/pis_client" health --port "$PORT" | grep -q '"ok":true'

echo "== shutdown must be clean"
"$BIN/pis_client" shutdown --port "$PORT" | grep -q '"ok":true'
wait "$SERVER_PID"
grep -q "shut down cleanly" server.log
cat server.log

echo "server smoke: OK"
