#!/usr/bin/env bash
# Crash-recovery smoke of the durable write path with the real binaries:
# start pis_server with --wal_dir, stream adds through pis_client, kill -9
# the server mid-stream (no clean shutdown, no checkpoint — the index
# directory on disk is stale), append a torn tail to the WAL as a crashed
# append would, restart, and require every ACKED write to be queryable
# again. A clean-shutdown leg then proves the checkpoint truncates the WAL
# so the next startup replays nothing. CI runs this against the freshly
# built binaries; locally:
#
#   scripts/crash_recovery_smoke.sh ./build
set -euo pipefail

BIN="$(cd "${1:-./build}" && pwd)"
WORK="$(mktemp -d)"
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT
cd "$WORK"

start_server() { # $1 = log file
  "$BIN/pis_server" --db db.txt --index sharded_dir --wal_dir wal \
    --port 0 > "$1" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    grep -q "listening on port" "$1" && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$1"; exit 1; }
    sleep 0.1
  done
  PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$1")"
}

# First integer value of key $1 in JSON file $2 (top-level stats keys also
# appear per shard; the host-level value serializes first).
json_int() {
  grep -o "\"$1\":[0-9]*" "$2" | head -n1 | cut -d: -f2
}

# Queries the single-graph file $1 and requires gid $2 among the answers
# (distance 0: every live graph answers itself).
expect_answer() {
  "$BIN/pis_client" query --port "$PORT" --query "$1" > q.json
  grep -q '"ok":true' q.json
  grep -o '"answers":\[[^]]*\]' q.json | grep -Eq "(\[|,)$2(,|\])" || {
    echo "graph $1 (acked id $2) is not queryable after recovery"
    cat q.json
    exit 1
  }
}

echo "== prepare sample DB + sharded index + 20 single-graph add files"
"$BIN/pis_cli" generate --out db.txt --count 60 --seed 42
"$BIN/pis_cli" build --db db.txt --out sharded_dir --max_fragment_edges 4 \
  --min_support 0.08 --shards 4
"$BIN/pis_cli" generate --out stream.txt --count 20 --seed 9
awk '/^t /{n++} {print > ("stream_" n ".txt")}' stream.txt

echo "== start pis_server with a WAL"
start_server server1.log
grep -q "durable writes on" server1.log
echo "   port $PORT"

echo "== phase A: 5 synchronous adds, every ack recorded"
: > acks.txt
for i in 1 2 3 4 5; do
  "$BIN/pis_client" add --port "$PORT" --graphs "stream_$i.txt" > add.json
  grep -q '"ok":true' add.json
  grep -o '"id":[0-9]*' add.json | cut -d: -f2 >> acks.txt
done

echo "== phase B: stream more adds in the background, kill -9 mid-stream"
(
  for i in $(seq 6 20); do
    "$BIN/pis_client" add --port "$PORT" --graphs "stream_$i.txt" \
      >> stream_acks.jsonl 2>/dev/null || exit 0
    sleep 0.02
  done
) &
STREAMER_PID=$!
sleep 0.4
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
wait "$STREAMER_PID" 2>/dev/null || true
# Only fully acknowledged responses count; a write in flight at the kill
# may be recovered (it hit the fsynced WAL) but nothing is owed for it.
grep '"ok":true' stream_acks.jsonl 2>/dev/null \
  | grep -o '"id":[0-9]*' | cut -d: -f2 >> acks.txt || true
ACKED="$(wc -l < acks.txt)"
echo "   $ACKED acked adds before the crash"
[ "$ACKED" -ge 5 ]

echo "== simulate a crash mid-append: torn frame at the WAL tail"
printf '\x80\x00\x00\x00\xde\xad' >> wal/wal.log

echo "== restart: WAL replay over the stale snapshot must recover every ack"
start_server server2.log
grep -q "replayed" server2.log
echo "   $(grep -o 'replayed [0-9]* WAL record(s)' server2.log)"

i=0
while read -r id; do
  i=$((i + 1))
  expect_answer "stream_$i.txt" "$id"
done < acks.txt
echo "   all $ACKED acked graphs answer their own query"

"$BIN/pis_client" stats --port "$PORT" > stats1.json
grep -q '"wal_records":' stats1.json
grep -q '"wal_bytes":' stats1.json
grep -q '"group_commit_batch_size":' stats1.json
WAL_RECORDS="$(json_int wal_records stats1.json)"
LIVE="$(json_int live stats1.json)"
[ "$WAL_RECORDS" -ge "$ACKED" ]
[ "$LIVE" -ge $((60 + ACKED)) ]

echo "== clean shutdown checkpoints and truncates the WAL"
"$BIN/pis_client" remove --port "$PORT" --ids 60 | grep -q '"ok":true'
"$BIN/pis_client" shutdown --port "$PORT" | grep -q '"ok":true'
wait "$SERVER_PID"
SERVER_PID=""
grep -q "checkpointed index" server2.log
grep -q "shut down cleanly" server2.log

echo "== restart after checkpoint: nothing to replay, remove persisted"
start_server server3.log
if grep -q "replayed" server3.log; then
  echo "checkpoint did not truncate the WAL"; cat server3.log; exit 1
fi
"$BIN/pis_client" stats --port "$PORT" > stats2.json
[ "$(json_int wal_records stats2.json)" -eq 0 ]
[ "$(json_int live stats2.json)" -eq $((LIVE - 1)) ]
"$BIN/pis_client" query --port "$PORT" --query stream_1.txt > q60.json
grep -o '"answers":\[[^]]*\]' q60.json | grep -Eq '(\[|,)60(,|\])' && {
  echo "removed graph 60 still answers"; exit 1
}
"$BIN/pis_client" shutdown --port "$PORT" | grep -q '"ok":true'
wait "$SERVER_PID"
SERVER_PID=""

echo "crash recovery smoke: OK"
