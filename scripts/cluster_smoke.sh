#!/usr/bin/env bash
# End-to-end smoke of the distributed shard fabric: 3 shard groups x 2
# replicas of pis_server (each with its own WAL) behind a pis_router,
# checked differentially against a single full-index pis_server oracle
# that receives the same write schedule. One replica is kill -9'd
# mid-stream: the cluster must stay available, accept writes (one-ack
# commit + catch-up queue), and after the replica restarts — WAL replay
# plus router catch-up — serve identical answers even when its sibling
# dies and it becomes the only source for its shard. CI runs this against
# the freshly built binaries; locally:
#
#   scripts/cluster_smoke.sh ./build
set -euo pipefail

BIN="$(cd "${1:-./build}" && pwd)"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

SHARDS=3
REPLICAS=2

wait_listening() {  # <log> <pid>
  for _ in $(seq 1 100); do
    grep -q "listening on port" "$1" && return 0
    kill -0 "$2" 2>/dev/null || break
    sleep 0.1
  done
  cat "$1"
  return 1
}

port_from() { sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$1"; }

answers() { grep -o '"answers":\[[^]]*\]' "$1"; }

# The cluster and the oracle received the same writes in the same order,
# so every query must produce byte-identical answer lists and candidate
# counts through both front doors.
check_match() {  # <query file>
  "$BIN/pis_client" query --port "$ROUTER_PORT" --query "$1" > r.json
  "$BIN/pis_client" query --port "$ORACLE_PORT" --query "$1" > o.json
  grep -q '"ok":true' r.json
  grep -q '"ok":true' o.json
  local ra oa rc oc
  ra="$(answers r.json)"; oa="$(answers o.json)"
  rc="$(grep -o '"candidates":[0-9]*' r.json)"
  oc="$(grep -o '"candidates":[0-9]*' o.json)"
  if [ "$ra" != "$oa" ] || [ "$rc" != "$oc" ]; then
    echo "cluster and oracle disagree on $1:"
    echo "  router: $ra $rc"
    echo "  oracle: $oa $oc"
    exit 1
  fi
}

echo "== prepare sample DB + ${SHARDS}-shard index"
"$BIN/pis_cli" generate --out db.txt --count 60 --seed 42
"$BIN/pis_cli" build --db db.txt --out sharded_dir --max_fragment_edges 4 \
  --min_support 0.08 --shards "$SHARDS"
# The first two records of the DB are their own sigma-0 answers — queries
# with known non-empty results.
awk '/^t /{n++} n<=1' db.txt > probe0.txt
awk '/^t /{n++} n==2' db.txt > probe1.txt
"$BIN/pis_cli" generate --out fresh.txt --count 1 --seed 1234
"$BIN/pis_cli" generate --out new.txt --count 2 --seed 7
"$BIN/pis_cli" generate --out late.txt --count 1 --seed 9

echo "== start ${SHARDS}x${REPLICAS} shard replicas (own db/index/WAL each)"
declare -a PIDS PORTS
for g in $(seq 0 $((SHARDS - 1))); do
  for r in $(seq 0 $((REPLICAS - 1))); do
    idx=$((g * REPLICAS + r))
    node="node_${g}_${r}"
    mkdir -p "$node"
    cp db.txt "$node/db.txt"
    cp -r sharded_dir "$node/index"
    "$BIN/pis_server" --db "$node/db.txt" --index "$node/index" \
      --wal_dir "$node/wal" --port 0 --shards_owned "$g" \
      > "$node/server.log" 2>&1 &
    PIDS[$idx]=$!
    wait_listening "$node/server.log" "${PIDS[$idx]}"
    PORTS[$idx]="$(port_from "$node/server.log")"
    echo "   shard $g replica $r: port ${PORTS[$idx]}"
  done
done

echo "== start the single-process oracle (full index, same writes)"
"$BIN/pis_server" --db db.txt --index sharded_dir --port 0 \
  > oracle.log 2>&1 &
ORACLE_PID=$!
wait_listening oracle.log "$ORACLE_PID"
ORACLE_PORT="$(port_from oracle.log)"
echo "   oracle: port $ORACLE_PORT"

echo "== start pis_router over the manifest"
{
  printf '{"shards": ['
  for g in $(seq 0 $((SHARDS - 1))); do
    [ "$g" -gt 0 ] && printf ', '
    printf '{"replicas": ['
    for r in $(seq 0 $((REPLICAS - 1))); do
      [ "$r" -gt 0 ] && printf ', '
      printf '"127.0.0.1:%s"' "${PORTS[$((g * REPLICAS + r))]}"
    done
    printf ']}'
  done
  printf ']}\n'
} > manifest.json
cat manifest.json
"$BIN/pis_router" --manifest manifest.json --port 0 --timeout_ms 5000 \
  --breaker_threshold 1 --breaker_open_ms 100 --health_interval_ms 50 \
  > router.log 2>&1 &
ROUTER_PID=$!
wait_listening router.log "$ROUTER_PID"
ROUTER_PORT="$(port_from router.log)"
echo "   router: port $ROUTER_PORT"

echo "== health through the router"
"$BIN/pis_client" health --port "$ROUTER_PORT" | tee health.json
grep -q '"ok":true' health.json
grep -q '"live":60' health.json

echo "== differential queries (cluster vs oracle)"
check_match probe0.txt
check_match probe1.txt
check_match fresh.txt
"$BIN/pis_client" query --port "$ROUTER_PORT" --query probe0.txt \
  | grep -q '"answers":\[0[],]'

echo "== writes through the router, mirrored to the oracle"
"$BIN/pis_client" add --port "$ROUTER_PORT" --graphs new.txt | tee add.json
grep -q '"id":60' add.json
grep -q '"id":61' add.json
"$BIN/pis_client" add --port "$ORACLE_PORT" --graphs new.txt | tee oadd.json
grep -q '"id":60' oadd.json
grep -q '"id":61' oadd.json
"$BIN/pis_client" remove --port "$ROUTER_PORT" --ids 60 \
  | grep -q '"ok":true'
"$BIN/pis_client" remove --port "$ORACLE_PORT" --ids 60 \
  | grep -q '"ok":true'
check_match probe0.txt
check_match probe1.txt
"$BIN/pis_client" health --port "$ROUTER_PORT" | grep -q '"live":61'

echo "== traced query through the router carries per-shard child spans"
"$BIN/pis_client" query --port "$ROUTER_PORT" --query probe0.txt --trace \
  > traced.json 2> trace.txt
grep -q '"ok":true' traced.json
grep -q '"trace_id"' traced.json
# The router-level "query" root span must contain the two-round fan-out:
# shard_query round trips (with the replicas' own child spans grafted in)
# and per-shard shard_verify round trips.
grep -q '"name":"query"' traced.json
grep -q '"name":"shard_query:' traced.json
grep -q '"name":"shard_verify:' traced.json
grep -q '"name":"merge"' traced.json
grep -q '"name":"enumerate"' traced.json
grep -q "ms total" trace.txt
grep -q "shard_query" trace.txt

echo "== router metrics exposition reflects the load just driven"
"$BIN/pis_client" metrics --port "$ROUTER_PORT" | tee router_metrics.txt
grep -q '^# TYPE pis_router_requests_total counter' router_metrics.txt
grep -q '^# TYPE pis_router_request_seconds histogram' router_metrics.txt
grep -q '^# TYPE pis_cluster_rpc_seconds histogram' router_metrics.txt
grep -q '^# TYPE pis_cluster_breaker_open gauge' router_metrics.txt
# The queries and writes above must have been counted.
grep -E '^pis_router_requests_total\{op="query"\} [1-9]' router_metrics.txt \
  > /dev/null
grep -E '^pis_router_requests_total\{op="add"\} [1-9]' router_metrics.txt \
  > /dev/null
grep -E '^pis_cluster_rpc_seconds_count\{.*op="shard_query".*\} [1-9]' \
  router_metrics.txt > /dev/null
# The stats reply mirrors the registry as JSON.
"$BIN/pis_client" stats --port "$ROUTER_PORT" \
  | grep -q '"pis_router_requests_total"'

echo "== a failed write reports an application error, exit code intact"
if "$BIN/pis_client" remove --port "$ROUTER_PORT" --ids 99999 > bad.json; then
  echo "expected nonzero exit for a failed remove"; exit 1
fi
grep -q '"ok":false' bad.json

echo "== kill -9 one replica of shard 0; the cluster must not notice"
kill -9 "${PIDS[0]}"
wait "${PIDS[0]}" 2>/dev/null || true
check_match probe0.txt
check_match probe1.txt

echo "== writes during the outage commit on one ack and queue catch-up"
"$BIN/pis_client" add --port "$ROUTER_PORT" --graphs late.txt | tee late.json
grep -q '"id":62' late.json
"$BIN/pis_client" add --port "$ORACLE_PORT" --graphs late.txt \
  | grep -q '"id":62'
check_match probe0.txt
"$BIN/pis_client" health --port "$ROUTER_PORT" | grep -q '"live":62'

echo "== restart the dead replica on its old port: WAL replay + catch-up"
"$BIN/pis_server" --db node_0_0/db.txt --index node_0_0/index \
  --wal_dir node_0_0/wal --port "${PORTS[0]}" --shards_owned 0 \
  > node_0_0/server2.log 2>&1 &
PIDS[0]=$!
wait_listening node_0_0/server2.log "${PIDS[0]}"
grep -q "replayed .* WAL record" node_0_0/server2.log

# The router's health prober has to notice the recovery, close the
# breaker, and drain the queued catch-up ops before the replica counts as
# readable again.
for _ in $(seq 1 100); do
  "$BIN/pis_client" stats --port "$ROUTER_PORT" > rstats.json
  if ! grep -q '"breaker_open":true' rstats.json &&
     ! grep -q '"pending_ops":[1-9]' rstats.json; then
    break
  fi
  sleep 0.1
done
grep -q '"breaker_open":true' rstats.json && { cat rstats.json; exit 1; }
grep -q '"pending_ops":[1-9]' rstats.json && { cat rstats.json; exit 1; }

echo "== kill the sibling: the recovered replica is now shard 0's only source"
kill -9 "${PIDS[1]}"
wait "${PIDS[1]}" 2>/dev/null || true
check_match probe0.txt
check_match probe1.txt
check_match fresh.txt
"$BIN/pis_client" health --port "$ROUTER_PORT" | grep -q '"live":62'

echo "== shutdown must be clean everywhere"
"$BIN/pis_client" shutdown --port "$ROUTER_PORT" | grep -q '"ok":true'
wait "$ROUTER_PID"
grep -q "shut down cleanly" router.log
for idx in 0 2 3 4 5; do
  "$BIN/pis_client" shutdown --port "${PORTS[$idx]}" | grep -q '"ok":true'
  wait "${PIDS[$idx]}"
done
"$BIN/pis_client" shutdown --port "$ORACLE_PORT" | grep -q '"ok":true'
wait "$ORACLE_PID"
grep -q "shut down cleanly" node_0_0/server2.log
cat router.log

echo "cluster smoke: OK"
