// Sharded substructure search: split the database across four per-shard
// fragment indexes, answer queries with ShardedPisEngine (identical results
// to the monolithic engine), and round-trip the whole sharded index through
// a manifest directory on disk.
#include <cstdio>
#include <filesystem>
#include <vector>

#include "pis.h"

int main() {
  using namespace pis;

  // 1. A reproducible synthetic molecule database.
  MoleculeGeneratorOptions gen_options;
  gen_options.seed = 42;
  MoleculeGenerator generator(gen_options);
  GraphDatabase db = generator.Generate(200);
  std::printf("database: %d graphs\n", db.size());

  // 2. Mine skeleton features (shared by every shard).
  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support = 20;
  mine.max_edges = 4;
  auto patterns = MineFrequentSubgraphs(skeletons, mine);
  if (!patterns.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 patterns.status().ToString().c_str());
    return 1;
  }
  FeatureSelectorOptions select;
  auto selected =
      SelectDiscriminativeFeatures(patterns.value(), db.size(), select);
  if (!selected.ok()) return 1;
  std::vector<Graph> features;
  for (size_t idx : selected.value()) {
    features.push_back(patterns.value()[idx].graph);
  }

  // 3. Build one index per shard (parallel across shards) and the
  // monolithic reference index.
  FragmentIndexOptions index_options;
  index_options.max_fragment_edges = 4;
  index_options.num_threads = HardwareThreads();
  auto sharded =
      ShardedFragmentIndex::Build(db, features, index_options, /*num_shards=*/4);
  if (!sharded.ok()) {
    std::fprintf(stderr, "sharded build failed: %s\n",
                 sharded.status().ToString().c_str());
    return 1;
  }
  auto mono = FragmentIndex::Build(db, features, index_options);
  if (!mono.ok()) return 1;
  std::printf("sharded index: %d shards, %d classes, built in %.2fs\n",
              sharded.value().num_shards(), sharded.value().num_classes(),
              sharded.value().build_seconds());
  for (int s = 0; s < sharded.value().num_shards(); ++s) {
    std::printf("  shard %d: %d graphs (globals %d..%d)\n", s,
                sharded.value().shard_size(s), sharded.value().global_id(s, 0),
                sharded.value().global_id(s, sharded.value().shard_size(s) - 1));
  }

  // 4. Search with both engines; answers must agree graph for graph.
  PisOptions options;
  options.sigma = 2.0;
  options.shard_threads = HardwareThreads();
  ShardedPisEngine engine(&db, &sharded.value(), options);
  PisEngine reference(&db, &mono.value(), options);
  QuerySampler sampler(&db, {.seed = 7, .strip_vertex_labels = true});
  for (int i = 0; i < 5; ++i) {
    auto query = sampler.Sample(8);
    if (!query.ok()) continue;
    auto got = engine.Search(query.value());
    auto want = reference.Search(query.value());
    if (!got.ok() || !want.ok()) {
      std::fprintf(stderr, "search failed: %s\n",
                   (got.ok() ? want : got).status().ToString().c_str());
      return 1;
    }
    if (got.value().answers != want.value().answers) {
      std::fprintf(stderr, "sharded answers diverge from monolithic!\n");
      return 1;
    }
    std::printf("query %d: %zu candidates, %zu answers (matches monolithic)\n",
                i, got.value().stats.candidates_final,
                got.value().answers.size());
  }

  // 5. Persist the sharded index and serve from the reloaded copy.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "pis_sharded_example";
  Status saved = sharded.value().SaveDir(dir.string());
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  auto loaded = ShardedFragmentIndex::LoadDir(dir.string());
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  ShardedPisEngine reloaded(&db, &loaded.value(), options);
  auto query = sampler.Sample(8);
  if (query.ok()) {
    auto before = engine.Search(query.value());
    auto after = reloaded.Search(query.value());
    if (!before.ok() || !after.ok() ||
        before.value().answers != after.value().answers) {
      std::fprintf(stderr, "reloaded index diverges!\n");
      return 1;
    }
    std::printf("save/load round trip: %zu answers, identical before/after\n",
                after.value().answers.size());
  }
  std::filesystem::remove_all(dir);
  return 0;
}
