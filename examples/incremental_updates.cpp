// Incremental maintenance + persistence + nearest-neighbour search: the
// "living database" workflow. Build an index over an initial compound
// collection, persist it, append newly synthesized molecules with AddGraph
// (no rebuild), retire withdrawn compounds with RemoveGraph (tombstones),
// reclaim their postings with Compact (ids re-densify; the remap realigns
// the database), and answer top-k similarity queries throughout.
//
//   ./build/examples/incremental_updates
#include <cstdio>

#include "core/topk.h"
#include "pis.h"

using namespace pis;

int main() {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 2024;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(250);
  std::printf("initial collection: %d molecules\n", db.size());

  // Features + index over the initial snapshot.
  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support = 5;
  mine.max_edges = 5;
  auto patterns = MineFrequentSubgraphs(skeletons, mine);
  if (!patterns.ok()) {
    std::fprintf(stderr, "%s\n", patterns.status().ToString().c_str());
    return 1;
  }
  std::vector<Graph> features;
  for (const Pattern& p : patterns.value()) features.push_back(p.graph);
  FragmentIndexOptions iopt;
  iopt.max_fragment_edges = 5;
  iopt.num_threads = HardwareThreads();
  auto built = FragmentIndex::Build(db, features, iopt);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  FragmentIndex index = built.MoveValue();
  std::printf("index: %d classes, built with %d threads in %.2fs\n",
              index.num_classes(), iopt.num_threads, index.stats().build_seconds);

  // Persist + reload (e.g. a daily snapshot served by another process).
  std::string path = "/tmp/pis_incremental_demo.pisx";
  if (!index.SaveFile(path).ok()) {
    std::fprintf(stderr, "persist failed\n");
    return 1;
  }
  auto reloaded = FragmentIndex::LoadFile(path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "%s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  index = reloaded.MoveValue();
  std::printf("persisted and reloaded from %s\n", path.c_str());

  // New molecules arrive; index them without a rebuild.
  for (int i = 0; i < 50; ++i) {
    Graph fresh = gen.Next();
    auto gid = index.AddGraph(fresh);
    if (!gid.ok()) {
      std::fprintf(stderr, "%s\n", gid.status().ToString().c_str());
      return 1;
    }
    db.Add(std::move(fresh));
  }
  std::printf("appended 50 molecules incrementally (db now %d)\n", db.size());

  // A few compounds get withdrawn: tombstone them. Their ids stay
  // allocated (the db keeps its records) but they vanish from every
  // subsequent query.
  for (int gid : {3, 77, 140}) {
    Status removed = index.RemoveGraph(gid);
    if (!removed.ok()) {
      std::fprintf(stderr, "%s\n", removed.ToString().c_str());
      return 1;
    }
  }
  std::printf("retired 3 molecules (%d of %d live, dead ratio %.3f)\n",
              index.num_live(), index.db_size(), index.dead_ratio());

  // Repay the deletion debt in place: Compact drops the dead postings and
  // re-densifies ids; applying the remap to the database keeps the two
  // aligned (sharded indexes skip this — their global ids never change).
  const std::vector<int> remap = index.Compact();
  GraphDatabase live_db;
  for (int gid = 0; gid < static_cast<int>(remap.size()); ++gid) {
    if (remap[gid] >= 0) live_db.Add(db.at(gid));
  }
  db = std::move(live_db);
  std::printf("compacted: %d molecules, epoch %u, queries unchanged\n",
              index.db_size(), index.compaction_epoch());

  // Similarity query over the updated collection: 10 nearest neighbours of
  // a scaffold sampled from one of the *new* molecules.
  QuerySampler sampler(&db, {.seed = 77, .strip_vertex_labels = true});
  auto query = sampler.Sample(10);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  TopKOptions topk;
  topk.k = 10;
  auto nearest = TopKSearch(db, index, query.value(), topk);
  if (!nearest.ok()) {
    std::fprintf(stderr, "%s\n", nearest.status().ToString().c_str());
    return 1;
  }
  std::printf("top-%d neighbours (σ expanded %d rounds to %.1f):\n", topk.k,
              nearest.value().rounds, nearest.value().final_sigma);
  // The three retirements were all initial-collection ids, so after the
  // compaction remap the appended molecules start at 250 - 3 = 247.
  for (const auto& [gid, d] : nearest.value().results) {
    std::printf("  molecule #%d at mutation distance %.0f%s\n", gid, d,
                gid >= 247 ? "  (appended after the initial build)" : "");
  }
  return 0;
}
