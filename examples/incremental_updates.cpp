// Incremental maintenance + persistence + nearest-neighbour search: the
// "living database" workflow. Build an index over an initial compound
// collection, persist it, append newly synthesized molecules with AddGraph
// (no rebuild), retire withdrawn compounds with RemoveGraph (tombstones),
// and answer top-k similarity queries throughout.
//
//   ./build/examples/incremental_updates
#include <cstdio>

#include "core/topk.h"
#include "pis.h"

using namespace pis;

int main() {
  MoleculeGeneratorOptions gopt;
  gopt.seed = 2024;
  MoleculeGenerator gen(gopt);
  GraphDatabase db = gen.Generate(250);
  std::printf("initial collection: %d molecules\n", db.size());

  // Features + index over the initial snapshot.
  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support = 5;
  mine.max_edges = 5;
  auto patterns = MineFrequentSubgraphs(skeletons, mine);
  if (!patterns.ok()) {
    std::fprintf(stderr, "%s\n", patterns.status().ToString().c_str());
    return 1;
  }
  std::vector<Graph> features;
  for (const Pattern& p : patterns.value()) features.push_back(p.graph);
  FragmentIndexOptions iopt;
  iopt.max_fragment_edges = 5;
  iopt.num_threads = HardwareThreads();
  auto built = FragmentIndex::Build(db, features, iopt);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  FragmentIndex index = built.MoveValue();
  std::printf("index: %d classes, built with %d threads in %.2fs\n",
              index.num_classes(), iopt.num_threads, index.stats().build_seconds);

  // Persist + reload (e.g. a daily snapshot served by another process).
  std::string path = "/tmp/pis_incremental_demo.pisx";
  if (!index.SaveFile(path).ok()) {
    std::fprintf(stderr, "persist failed\n");
    return 1;
  }
  auto reloaded = FragmentIndex::LoadFile(path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "%s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  index = reloaded.MoveValue();
  std::printf("persisted and reloaded from %s\n", path.c_str());

  // New molecules arrive; index them without a rebuild.
  for (int i = 0; i < 50; ++i) {
    Graph fresh = gen.Next();
    auto gid = index.AddGraph(fresh);
    if (!gid.ok()) {
      std::fprintf(stderr, "%s\n", gid.status().ToString().c_str());
      return 1;
    }
    db.Add(std::move(fresh));
  }
  std::printf("appended 50 molecules incrementally (db now %d)\n", db.size());

  // A few compounds get withdrawn: tombstone them. Their ids stay
  // allocated (the db file keeps its records) but they vanish from every
  // subsequent query; a periodic rebuild reclaims the posting space.
  for (int gid : {3, 77, 140}) {
    Status removed = index.RemoveGraph(gid);
    if (!removed.ok()) {
      std::fprintf(stderr, "%s\n", removed.ToString().c_str());
      return 1;
    }
  }
  std::printf("retired 3 molecules (%d of %d live)\n", index.num_live(),
              index.db_size());

  // Similarity query over the updated collection: 10 nearest neighbours of
  // a scaffold sampled from one of the *new* molecules.
  QuerySampler sampler(&db, {.seed = 77, .strip_vertex_labels = true});
  auto query = sampler.Sample(10);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  TopKOptions topk;
  topk.k = 10;
  auto nearest = TopKSearch(db, index, query.value(), topk);
  if (!nearest.ok()) {
    std::fprintf(stderr, "%s\n", nearest.status().ToString().c_str());
    return 1;
  }
  std::printf("top-%d neighbours (σ expanded %d rounds to %.1f):\n", topk.k,
              nearest.value().rounds, nearest.value().final_sigma);
  for (const auto& [gid, d] : nearest.value().results) {
    std::printf("  molecule #%d at mutation distance %.0f%s\n", gid, d,
                gid >= 250 ? "  (appended after the initial build)" : "");
  }
  return 0;
}
