// Index explorer: inspect what the fragment-based index actually stores —
// equivalence classes, their skeleton codes, fragment/sequence counts, and
// per-class containment statistics. Useful when tuning feature mining.
//
//   ./build/examples/index_explorer [--db_size N] [--max_fragment_edges K]
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "pis.h"
#include "util/flags.h"

using namespace pis;

int main(int argc, char** argv) {
  int db_size = 300;
  int max_fragment_edges = 5;
  double min_support = 0.02;
  int top = 15;
  FlagSet flags;
  flags.AddInt("db_size", &db_size, "database size");
  flags.AddInt("max_fragment_edges", &max_fragment_edges, "max indexed size");
  flags.AddDouble("min_support", &min_support, "relative feature min support");
  flags.AddInt("top", &top, "number of classes to list");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  MoleculeGenerator generator;
  GraphDatabase db = generator.Generate(db_size);

  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support =
      std::max(1, static_cast<int>(min_support * db.size()));
  mine.max_edges = max_fragment_edges;
  auto patterns = MineFrequentSubgraphs(skeletons, mine);
  if (!patterns.ok()) {
    std::fprintf(stderr, "%s\n", patterns.status().ToString().c_str());
    return 1;
  }
  std::vector<Graph> features;
  for (const Pattern& p : patterns.value()) features.push_back(p.graph);

  FragmentIndexOptions options;
  options.max_fragment_edges = max_fragment_edges;
  auto index = FragmentIndex::Build(db, features, options);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  const FragmentIndex& idx = index.value();
  const FragmentIndexStats& stats = idx.stats();

  std::printf("=== index summary ===\n");
  std::printf("database graphs:        %d\n", db.size());
  std::printf("equivalence classes:    %zu\n", stats.num_classes);
  std::printf("fragment occurrences:   %zu\n", stats.num_fragment_occurrences);
  std::printf("sequences inserted:     %zu (automorphism variants, deduped)\n",
              stats.num_sequences_inserted);
  std::printf("subsets enumerated:     %zu (signature-skipped: %zu)\n",
              stats.num_subsets_enumerated, stats.num_subsets_skipped_by_signature);
  std::printf("build time:             %.2f s\n", stats.build_seconds);

  // Rank classes by containment breadth (how many graphs own one).
  std::vector<int> order(idx.num_classes());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return idx.class_at(a).containing_graphs().size() >
           idx.class_at(b).containing_graphs().size();
  });
  std::printf("\n%-6s %-9s %-9s %-10s %-10s %s\n", "class", "vertices", "edges",
              "fragments", "graphs", "skeleton key");
  for (int i = 0; i < std::min<int>(top, idx.num_classes()); ++i) {
    const EquivalenceClassIndex& cls = idx.class_at(order[i]);
    std::printf("%-6d %-9d %-9d %-10zu %-10zu %s\n", order[i], cls.num_vertices(),
                cls.num_edges(), cls.num_fragments(),
                cls.containing_graphs().size(), cls.key().c_str());
  }
  std::printf("\nLow-coverage classes are the selective ones: a query fragment\n"
              "in such a class prunes nearly the whole database (paper Def. 5).\n");
  return 0;
}
