// Batched substructure search: build a small index, then answer a whole
// query workload in one SearchBatch call spread over all hardware threads.
// Demonstrates per-query error isolation (the deliberately empty query
// fails alone) and the aggregated batch statistics.
#include <cstdio>
#include <vector>

#include "pis.h"

int main() {
  using namespace pis;

  // 1. A reproducible synthetic molecule database.
  MoleculeGeneratorOptions gen_options;
  gen_options.seed = 42;
  MoleculeGenerator generator(gen_options);
  GraphDatabase db = generator.Generate(200);
  std::printf("database: %d graphs, avg %.1f vertices\n", db.size(),
              db.AverageVertices());

  // 2. Mine skeleton features and build the fragment index.
  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support = 20;
  mine.max_edges = 4;
  auto patterns = MineFrequentSubgraphs(skeletons, mine);
  if (!patterns.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 patterns.status().ToString().c_str());
    return 1;
  }
  FeatureSelectorOptions select;
  auto selected =
      SelectDiscriminativeFeatures(patterns.value(), db.size(), select);
  if (!selected.ok()) return 1;
  std::vector<Graph> features;
  for (size_t idx : selected.value()) {
    features.push_back(patterns.value()[idx].graph);
  }
  FragmentIndexOptions index_options;
  index_options.max_fragment_edges = 4;
  auto index = FragmentIndex::Build(db, features, index_options);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  // 3. A query workload: sampled subgraphs plus one bad (empty) query.
  QuerySampler sampler(&db, {.seed = 7, .strip_vertex_labels = true});
  std::vector<Graph> queries;
  for (int i = 0; i < 15; ++i) {
    auto q = sampler.Sample(8);
    if (q.ok()) queries.push_back(q.value());
  }
  queries.push_back(Graph());  // isolated failure, not a batch abort

  // 4. One batched call over all hardware threads.
  PisOptions options;
  options.sigma = 2;
  PisEngine engine(&db, &index.value(), options);
  BatchSearchResult batch = engine.SearchBatch(queries, /*num_threads=*/0);

  for (size_t qi = 0; qi < batch.results.size(); ++qi) {
    const auto& r = batch.results[qi];
    if (!r.ok()) {
      std::printf("query %2zu: %s\n", qi, r.status().ToString().c_str());
    } else {
      std::printf("query %2zu: %3zu candidates -> %zu answers\n", qi,
                  r.value().stats.candidates_final, r.value().answers.size());
    }
  }
  std::printf("\n%zu ok, %zu failed in %.3fs on %d threads\naggregate: %s\n",
              batch.succeeded, batch.failed, batch.wall_seconds,
              HardwareThreads(), batch.total_stats.ToString().c_str());
  return batch.succeeded > 0 ? 0 : 1;
}
