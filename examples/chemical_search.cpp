// Chemical substructure search with mutation tolerance — the paper's
// Example 1 scenario: find compounds containing a query scaffold with at
// most σ mutated bond types, e.g. tolerating single↔aromatic substitutions
// more cheaply than single↔triple.
//
//   ./build/examples/chemical_search [--db_size N] [--sigma S] [--sdf FILE]
//
// With --sdf the real NCI AIDS screen file (or any SDF) is used instead of
// the synthetic database.
#include <cstdio>

#include "pis.h"
#include "util/flags.h"

using namespace pis;

namespace {

// The query scaffold of the paper's Figure 2: an indene-like skeleton — a
// benzene ring fused with a five-ring. Bond labels: aromatic ring +
// single-bond five-ring.
Graph IndeneScaffold(const ChemicalVocabulary& vocab) {
  Label c = vocab.atoms.Find("C").ValueOr(1);
  Label aromatic = vocab.bonds.Find("aromatic").ValueOr(4);
  Label single = vocab.bonds.Find("single").ValueOr(1);
  Graph g;
  for (int i = 0; i < 9; ++i) g.AddVertex(c);
  // Six-ring 0-1-2-3-4-5, aromatic.
  for (int i = 0; i < 5; ++i) (void)g.AddEdge(i, i + 1, aromatic);
  (void)g.AddEdge(5, 0, aromatic);
  // Five-ring fused on edge (0,5): 0-6-7-8-5.
  (void)g.AddEdge(0, 6, single);
  (void)g.AddEdge(6, 7, single);
  (void)g.AddEdge(7, 8, single);
  (void)g.AddEdge(8, 5, single);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  int db_size = 400;
  double sigma = 2;
  std::string sdf_path;
  FlagSet flags;
  flags.AddInt("db_size", &db_size, "synthetic database size");
  flags.AddDouble("sigma", &sigma, "max mutation distance");
  flags.AddString("sdf", &sdf_path, "optional SDF file to search instead");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // Load or generate the compound database.
  MoleculeGenerator generator;
  ChemicalVocabulary vocab = generator.vocabulary();
  GraphDatabase db;
  if (!sdf_path.empty()) {
    auto loaded = ReadSdfFile(sdf_path, &vocab, {.require_connected = true});
    if (!loaded.ok()) {
      std::fprintf(stderr, "SDF load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    db = loaded.MoveValue();
  } else {
    db = generator.Generate(db_size);
  }
  std::printf("compound database: %d molecules\n", db.size());

  // A chemistry-aware mutation matrix: aromatic<->single and
  // aromatic<->double are mild perturbations (0.5); anything involving a
  // triple bond is a strong one (2.0).
  ScoreMatrix bond_scores = ScoreMatrix::Unit();
  Label single = vocab.bonds.Find("single").ValueOr(1);
  Label dbl = vocab.bonds.Find("double").ValueOr(2);
  Label triple = vocab.bonds.Find("triple").ValueOr(3);
  Label aromatic = vocab.bonds.Find("aromatic").ValueOr(4);
  (void)bond_scores.Set(aromatic, single, 0.5);
  (void)bond_scores.Set(aromatic, dbl, 0.5);
  (void)bond_scores.Set(triple, single, 2.0);
  (void)bond_scores.Set(triple, dbl, 2.0);
  (void)bond_scores.Set(triple, aromatic, 2.0);

  FragmentIndexOptions index_options;
  index_options.max_fragment_edges = 5;
  index_options.spec.type = DistanceType::kMutation;
  index_options.spec.vertex_scores = ScoreMatrix::Zero();
  index_options.spec.edge_scores = bond_scores;

  // Features: frequent skeletons of the database.
  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support = std::max(2, db.size() / 50);
  mine.max_edges = index_options.max_fragment_edges;
  auto patterns = MineFrequentSubgraphs(skeletons, mine);
  if (!patterns.ok()) {
    std::fprintf(stderr, "%s\n", patterns.status().ToString().c_str());
    return 1;
  }
  std::vector<Graph> features;
  for (const Pattern& p : patterns.value()) features.push_back(p.graph);
  auto index = FragmentIndex::Build(db, features, index_options);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("index: %d classes over %zu fragment occurrences\n",
              index.value().num_classes(),
              index.value().stats().num_fragment_occurrences);

  Graph query = IndeneScaffold(vocab);
  PisOptions options;
  options.sigma = sigma;
  PisEngine engine(&db, &index.value(), options);
  auto result = engine.Search(query);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "indene scaffold query (10 bonds), sigma=%.1f:\n"
      "  pruned %d -> %zu candidates, %zu matching molecules\n",
      sigma, db.size(), result.value().stats.candidates_final,
      result.value().answers.size());
  int shown = 0;
  auto model = index_options.spec.MakeCostModel();
  for (int gid : result.value().answers) {
    if (shown++ >= 5) break;
    double d = MinSuperimposedDistance(query, db.at(gid), *model, sigma);
    std::printf("  molecule #%d: %d atoms, %d bonds, distance %.1f\n", gid,
                db.at(gid).NumVertices(), db.at(gid).NumEdges(), d);
  }
  if (result.value().answers.empty()) {
    std::printf("  (no molecule within tolerance — try a larger --sigma)\n");
  }
  return 0;
}
