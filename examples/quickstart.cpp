// Quickstart: build a small molecule database, index it, and run one SSSD
// query end to end — the 60-second tour of the public API.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "pis.h"

using namespace pis;

int main() {
  // 1. A reproducible synthetic chemical database (or load your own with
  //    ReadGraphDatabaseFile / ReadSdfFile).
  MoleculeGenerator generator;
  GraphDatabase db = generator.Generate(300);
  std::printf("database: %d graphs, avg %.1f vertices / %.1f edges\n", db.size(),
              db.AverageVertices(), db.AverageEdges());

  // 2. Mine structure features: frequent skeletons, then keep the
  //    discriminative ones (gSpan + gIndex, as the paper prescribes).
  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support = 10;
  mine.max_edges = 5;
  auto patterns = MineFrequentSubgraphs(skeletons, mine);
  if (!patterns.ok()) {
    std::fprintf(stderr, "mining failed: %s\n", patterns.status().ToString().c_str());
    return 1;
  }
  auto selected = SelectDiscriminativeFeatures(patterns.value(), db.size(), {});
  std::vector<Graph> features;
  for (size_t idx : selected.value()) features.push_back(patterns.value()[idx].graph);
  std::printf("features: %zu frequent skeletons, %zu selected\n",
              patterns.value().size(), features.size());

  // 3. Build the fragment-based index for the edge mutation distance (the
  //    paper's evaluation distance: count of mismatched edge labels).
  FragmentIndexOptions index_options;
  index_options.max_fragment_edges = 5;
  index_options.spec = DistanceSpec::EdgeMutation();
  auto index = FragmentIndex::Build(db, features, index_options);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::printf("index: %d equivalence classes, %zu fragment sequences\n",
              index.value().num_classes(),
              index.value().stats().num_sequences_inserted);

  // 4. Sample a query from the database (the paper's protocol) and search
  //    for graphs within mutation distance 2.
  QuerySampler sampler(&db);
  auto query = sampler.Sample(12);
  if (!query.ok()) {
    std::fprintf(stderr, "sampling failed: %s\n", query.status().ToString().c_str());
    return 1;
  }
  PisOptions options;
  options.sigma = 2;
  PisEngine engine(&db, &index.value(), options);
  auto result = engine.Search(query.value());
  if (!result.ok()) {
    std::fprintf(stderr, "search failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("query: 12 edges; candidates after pruning: %zu; answers: %zu\n",
              result.value().stats.candidates_final, result.value().answers.size());
  std::printf("stats: %s\n", result.value().stats.ToString().c_str());

  // 5. Cross-check against the naive scan — same answers, no index.
  SearchResult naive = NaiveSearch(db, query.value(), index_options.spec, 2);
  std::printf("naive scan agrees: %s\n",
              naive.answers == result.value().answers ? "yes" : "NO (bug!)");
  return naive.answers == result.value().answers ? 0 : 1;
}
