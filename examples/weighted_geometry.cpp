// Geometric (linear-distance) search — the paper's R-tree scenario (§4,
// Example 3): edges carry numeric weights (bond lengths) and the query asks
// for substructures whose summed |Δweight| stays under σ.
//
//   ./build/examples/weighted_geometry [--db_size N] [--sigma S]
#include <cstdio>

#include "pis.h"
#include "util/flags.h"

using namespace pis;

int main(int argc, char** argv) {
  int db_size = 300;
  double sigma = 0.2;
  FlagSet flags;
  flags.AddInt("db_size", &db_size, "database size");
  flags.AddDouble("sigma", &sigma, "max total bond-length deviation");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kAlreadyExists) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // Molecules with pseudo bond lengths on every edge.
  MoleculeGeneratorOptions gopt;
  gopt.assign_weights = true;
  MoleculeGenerator generator(gopt);
  GraphDatabase db = generator.Generate(db_size);
  std::printf("database: %d weighted molecules\n", db.size());

  // Index for the linear mutation distance; classes store weight vectors in
  // R-trees instead of label tries.
  FragmentIndexOptions index_options;
  index_options.spec = DistanceSpec::EdgeLinear();
  index_options.max_fragment_edges = 4;
  GraphDatabase skeletons;
  for (const Graph& g : db.graphs()) skeletons.Add(g.Skeleton());
  GspanOptions mine;
  mine.min_support = std::max(2, db.size() / 50);
  mine.max_edges = index_options.max_fragment_edges;
  auto patterns = MineFrequentSubgraphs(skeletons, mine);
  if (!patterns.ok()) {
    std::fprintf(stderr, "%s\n", patterns.status().ToString().c_str());
    return 1;
  }
  std::vector<Graph> features;
  for (const Pattern& p : patterns.value()) features.push_back(p.graph);
  auto index = FragmentIndex::Build(db, features, index_options);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("index: %d classes (R-tree backend)\n", index.value().num_classes());

  // Query: a geometry sampled from the database, perturbed slightly — the
  // "find conformations close to this one" use case.
  QuerySampler sampler(&db, {.seed = 4, .strip_vertex_labels = true});
  auto query = sampler.Sample(8);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  Graph perturbed = query.MoveValue();
  Rng rng(99);
  for (EdgeId e = 0; e < perturbed.NumEdges(); ++e) {
    perturbed.SetEdgeWeight(
        e, perturbed.GetEdge(e).weight + rng.UniformDouble(-0.01, 0.01));
  }

  PisOptions options;
  options.sigma = sigma;
  PisEngine engine(&db, &index.value(), options);
  auto result = engine.Search(perturbed);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "8-bond geometric query, sigma=%.2f A total deviation:\n"
      "  pruned %d -> %zu candidates, %zu matches\n",
      sigma, db.size(), result.value().stats.candidates_final,
      result.value().answers.size());

  // Verify against the naive scan.
  SearchResult naive = NaiveSearch(db, perturbed, index_options.spec, sigma);
  std::printf("naive scan agrees: %s\n",
              naive.answers == result.value().answers ? "yes" : "NO (bug!)");
  return naive.answers == result.value().answers ? 0 : 1;
}
